#include "campaign/executor.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "campaign/report.hpp"
#include "campaign/shard_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/posix.hpp"
#include "util/rng.hpp"

namespace olfui {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::chrono::steady_clock::duration duration_from_seconds(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

/// One '\n'-terminated line from `in` (terminator stripped); false on EOF
/// or a non-EINTR read error. A signal interrupting the underlying read
/// sets the stream's error flag — cleared and retried, never reported as
/// a dead peer.
bool read_line(std::FILE* in, std::string& line) {
  char* buf = nullptr;
  std::size_t cap = 0;
  ssize_t n;
  for (;;) {
    errno = 0;
    n = ::getline(&buf, &cap, in);
    if (n >= 0) break;
    if (errno == EINTR) {
      std::clearerr(in);
      continue;
    }
    std::free(buf);
    return false;
  }
  line.assign(buf, static_cast<std::size_t>(n));
  std::free(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return true;
}

/// Writes one JSON document as a line and flushes (the protocol is
/// line-buffered in both directions). Returns false on a broken pipe.
bool write_line(std::FILE* out, const Json& doc) {
  const std::string text = doc.dump() + "\n";
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size())
    return false;
  return std::fflush(out) == 0;
}

/// Extracts the first complete line from a coordinator-side read buffer
/// (terminators stripped); false when no full line has arrived yet.
bool take_line(std::string& rbuf, std::string& line) {
  const std::size_t nl = rbuf.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(rbuf, 0, nl);
  rbuf.erase(0, nl + 1);
  while (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::string_view fault_model_name(FaultModel m) { return to_string(m); }

FaultModel fault_model_from_name(const Json& node) {
  const std::string& name = node.as_string();
  if (name == to_string(FaultModel::kStuckAt)) return FaultModel::kStuckAt;
  if (name == to_string(FaultModel::kTransition))
    return FaultModel::kTransition;
  throw JsonError("shard request: unknown fault_model '" + name + "'",
                  node.source_offset());
}

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "ended with wait status " + std::to_string(status);
}

/// Last few lines of a stderr capture file (the crash is at the end).
/// pread at explicit offsets: the file description (and its offset) is
/// shared with the child, which may still be appending — don't disturb it.
std::string file_tail(int fd, off_t size) {
  if (size <= 0) return {};
  constexpr off_t kTailBytes = 4096;
  const off_t start = size > kTailBytes ? size - kTailBytes : 0;
  std::string buf(static_cast<std::size_t>(size - start), '\0');
  const ssize_t n = ::pread(fd, buf.data(), buf.size(), start);
  if (n <= 0) return {};
  buf.resize(static_cast<std::size_t>(n));
  constexpr int kTailLines = 8;
  std::size_t pos = buf.size();
  for (int lines = 0; pos > 0; --pos) {
    if (buf[pos - 1] == '\n' && ++lines > kTailLines) break;
  }
  std::string tail = buf.substr(pos);
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  return tail;
}

}  // namespace

// ---------------------------------------------------------------------------
// InProcessExecutor

InProcessExecutor::InProcessExecutor(int threads) : threads_(threads) {}

int InProcessExecutor::resolved_threads() const {
  if (threads_ > 0) return threads_;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

WorkerPool& InProcessExecutor::pool() {
  if (!pool_)
    pool_ = std::make_unique<WorkerPool>(
        static_cast<std::size_t>(resolved_threads()) - 1);
  return *pool_;
}

std::vector<ShardResult> InProcessExecutor::execute(const ShardWork& work) {
  std::vector<ShardResult> results(work.shards.size());
  if (work.shards.empty()) return results;

  const bool tracing = obs::tracer().enabled();
  const auto worker = [&](ShardQueue& queue, std::size_t w) {
    std::unique_ptr<FaultBatchRunner> runner;  // created on first shard
    std::size_t idx;
    while (queue.pop(w, idx)) {
      const std::uint32_t shard = work.shards[idx];
      const std::size_t lo = work.plan.batch_start[shard];
      const std::size_t n = work.plan.batch_size(shard);
      try {
        // Runner construction stays outside the timed span: shard_seconds
        // is the adaptive scheduler's profile input and must measure
        // grading cost, not one-time per-worker setup.
        if (!runner) runner = work.test.make_runner();
        const std::int64_t s0 = tracing ? obs::tracer().now_us() : 0;
        const auto t0 = std::chrono::steady_clock::now();
        results[idx].mask = runner->run_batch(work.planned.subspan(lo, n));
        results[idx].seconds = seconds_since(t0);
        if (obs::metrics().enabled())
          obs::metrics()
              .histogram("campaign.shard_seconds",
                         {0.001, 0.01, 0.1, 1.0, 10.0})
              .observe(results[idx].seconds);
        if (tracing) {
          // tid = participant index, so the trace lane matches the worker
          // that actually ran the shard (steals included).
          obs::TraceEvent ev;
          ev.name = "shard";
          ev.cat = "campaign";
          ev.ts_us = s0;
          ev.dur_us = obs::tracer().now_us() - s0;
          ev.tid = static_cast<std::int64_t>(w);
          ev.args.emplace_back("shard", Json(static_cast<std::size_t>(shard)));
          ev.args.emplace_back("test", Json(work.test.name));
          ev.args.emplace_back("faults", Json(n));
          obs::tracer().record(std::move(ev));
        }
      } catch (const std::exception& e) {
        // The runner knows neither which shard it was grading nor for
        // which test — attach both before the pool rethrows on the
        // caller, so a campaign failure names the work item that died.
        throw std::runtime_error("campaign test '" + work.test.name +
                                 "' shard " + std::to_string(shard) + ": " +
                                 e.what());
      }
      if (work.progress) work.progress(n);
    }
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolved_threads()), work.shards.size());
  ShardQueue queue(work.shards.size(), workers);
  if (workers <= 1) {
    worker(queue, 0);
  } else {
    // Fan out over the persistent pool; it captures a throw from any
    // participant and rethrows the first one here, matching the 1-thread
    // path. The lock also keeps a shared executor from dispatching two
    // jobs onto one pool.
    std::lock_guard lock(mu_);
    pool().run(workers, [&](std::size_t w) { worker(queue, w); });
  }
  return results;
}

// ---------------------------------------------------------------------------
// Wire format

Json shard_request_to_json(const ShardWork& work) {
  Json doc = Json::object();
  doc.set("type", "grade");
  doc.set("protocol", kWorkerProtocolVersion);
  doc.set("test", work.test.name);
  doc.set("fault_model", std::string(fault_model_name(work.fault_model)));
  doc.set("spec", work.test.spec);
  // The default width stays implicit so width-64 requests are readable by
  // pre-width workers unchanged.
  if (work.lane_width != 64) doc.set("lanes", work.lane_width);
  doc.set("plan", batch_plan_to_json(work.plan, "wire"));
  Json targets = Json::array();
  for (FaultId f : work.targets)
    targets.push_back(static_cast<std::size_t>(f));
  doc.set("targets", std::move(targets));
  Json shards = Json::array();
  for (std::uint32_t s : work.shards)
    shards.push_back(static_cast<std::size_t>(s));
  doc.set("shards", std::move(shards));
  return doc;
}

ShardRequest shard_request_from_json(const Json& doc) {
  if (doc.at("type").as_string() != "grade")
    throw JsonError("shard request: not a grade document",
                    doc.at("type").source_offset());
  if (doc.at("protocol").as_int() != kWorkerProtocolVersion)
    throw JsonError("shard request: protocol version mismatch",
                    doc.at("protocol").source_offset());
  ShardRequest req;
  req.test = doc.at("test").as_string();
  req.telemetry = doc.contains("telemetry") && doc.at("telemetry").as_bool();
  req.dynamic = doc.contains("dynamic") && doc.at("dynamic").as_bool();
  req.heartbeat = doc.contains("heartbeat") && doc.at("heartbeat").as_bool();
  req.fault_model = fault_model_from_name(doc.at("fault_model"));
  req.spec = doc.at("spec");
  if (doc.contains("lanes")) {  // absent = 64, the pre-width protocol
    const Json& lanes = doc.at("lanes");
    req.lanes = lanes.as_int();
    if (req.lanes != 64 && req.lanes != 128 && req.lanes != 256)
      throw JsonError("shard request: lanes must be 64, 128 or 256",
                      lanes.source_offset());
    // A request wider than this build instantiates is deterministic
    // misconfiguration — refuse it before touching the plan, mirroring
    // the coordinator-side max_lanes check at hello.
    if (!lane_width_supported(req.lanes))
      throw JsonError("shard request: lanes exceed this worker's widest "
                      "kernel (" + std::to_string(kMaxLaneWidth) + ")",
                      lanes.source_offset());
  }
  // The plan is validated against the request's width: a batch over
  // lanes - 1 faults cannot be graded in one pass and must be refused,
  // never truncated.
  req.plan = batch_plan_from_json(
      doc.at("plan"), static_cast<std::size_t>(req.lanes - 1));
  const Json& targets = doc.at("targets");
  req.targets.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Json& node = targets.at(i);
    const std::size_t f = node.as_size();
    if (f > 0xFFFFFFFFull)
      throw JsonError("shard request: fault id overflows",
                      node.source_offset());
    req.targets.push_back(static_cast<FaultId>(f));
  }
  if (req.plan.order.size() != req.targets.size())
    throw JsonError("shard request: plan does not cover the targets",
                    doc.at("plan").source_offset());
  const Json& shards = doc.at("shards");
  req.shards.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Json& node = shards.at(i);
    const std::size_t s = node.as_size();
    if (s >= req.plan.batches())
      throw JsonError("shard request: shard id out of plan range",
                      node.source_offset());
    req.shards.push_back(static_cast<std::uint32_t>(s));
  }
  // Gather once here (the plan is validated above, inside
  // batch_plan_from_json): every consumer grades plan-ordered spans.
  req.planned.resize(req.targets.size());
  for (std::size_t i = 0; i < req.targets.size(); ++i)
    req.planned[i] = req.targets[req.plan.order[i]];
  return req;
}

// ---------------------------------------------------------------------------
// Deterministic chaos

ChaosSpec chaos_spec_from_string(std::string_view text) {
  ChaosSpec spec;
  if (text.empty()) return spec;
  const auto bad = [&](const std::string& why) -> ChaosSpec& {
    throw std::invalid_argument("chaos spec '" + std::string(text) +
                                "': " + why +
                                " (expected <seed>:<mode>[@N][:all])");
  };
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) bad("missing ':'");
  std::uint64_t seed = 0;
  for (char c : text.substr(0, colon)) {
    if (c < '0' || c > '9') bad("seed is not a number");
    seed = seed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  std::string_view rest = text.substr(colon + 1);
  if (rest.ends_with(":all")) {
    spec.all_incarnations = true;
    rest.remove_suffix(4);
  }
  int shard = 0;
  const std::size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    const std::string_view digits = rest.substr(at + 1);
    if (digits.empty()) bad("empty shard index");
    for (char c : digits) {
      if (c < '0' || c > '9') bad("shard index is not a number");
      shard = shard * 10 + (c - '0');
    }
    if (shard < 1) bad("shard index is 1-based");
    rest = rest.substr(0, at);
  }
  if (rest == "crash") spec.mode = ChaosSpec::Mode::kCrash;
  else if (rest == "stall") spec.mode = ChaosSpec::Mode::kStall;
  else if (rest == "trunc") spec.mode = ChaosSpec::Mode::kTrunc;
  else bad("unknown mode '" + std::string(rest) + "'");
  spec.seed = seed;
  // No explicit index: draw one from the seeded RNG, so "7:crash" names a
  // single reproducible failure point just like "7:crash@3".
  spec.shard = shard ? shard : 1 + static_cast<int>(Rng(seed).next_below(4));
  return spec;
}

// ---------------------------------------------------------------------------
// Worker side

int serve_worker(std::FILE* in, std::FILE* out, WorkerWorkload& workload,
                 const ChaosSpec* chaos) {
  const auto report = [&](const std::string& message) {
    Json error = Json::object();
    error.set("type", "error");
    error.set("message", message);
    write_line(out, error);
    return 1;
  };

  ChaosSpec env_chaos;
  if (!chaos) {
    const char* env = std::getenv("OLFUI_CHAOS");
    try {
      env_chaos = chaos_spec_from_string(env ? env : "");
    } catch (const std::invalid_argument& e) {
      return report(e.what());
    }
    chaos = &env_chaos;
  }
  // Chaos normally arms only in a process's first incarnation (the
  // coordinator stamps respawns with OLFUI_WORKER_INCARNATION >= 1), so a
  // respawned worker recovers and the campaign completes; ":all" keeps it
  // armed and drives the fleet down the degradation ladder.
  const char* inc_env = std::getenv("OLFUI_WORKER_INCARNATION");
  const int incarnation = inc_env ? std::atoi(inc_env) : 0;
  const bool chaos_armed = chaos->mode != ChaosSpec::Mode::kNone &&
                           (chaos->all_incarnations || incarnation == 0);
  int shards_started = 0;

  {
    Json hello = Json::object();
    hello.set("type", "hello");
    hello.set("protocol", kWorkerProtocolVersion);
    // Our monotonic clock at hello time: the coordinator pairs it with its
    // own to shift merged telemetry spans onto a common timeline.
    hello.set("ts_us", static_cast<double>(obs::tracer().now_us()));
    // Widest packed kernel this binary instantiates; the coordinator
    // rejects us for campaigns wider than this (misconfiguration, like a
    // universe mismatch — never retried).
    hello.set("max_lanes", kMaxLaneWidth);
    if (!write_line(out, hello)) return 1;
  }

  // Grades one granted shard and writes its reply; false on a dead pipe.
  // The chaos check sits between the announcement and the grade — a
  // crashing/stalling worker has already told the coordinator which shard
  // it owes, which is exactly the in-flight state recovery must re-queue.
  const auto grade_one = [&](const ShardRequest& req,
                             std::uint32_t shard) -> bool {
    if (req.heartbeat) {
      Json hb = Json::object();
      hb.set("type", "heartbeat");
      hb.set("shard", static_cast<std::size_t>(shard));
      if (!write_line(out, hb)) return false;
    }
    ++shards_started;
    if (chaos_armed && shards_started == chaos->shard) {
      switch (chaos->mode) {
        case ChaosSpec::Mode::kCrash:
          ::kill(::getpid(), SIGKILL);  // the mid-campaign worker death
          break;
        case ChaosSpec::Mode::kStall:
          // Wedge well past any deadline; the coordinator's SIGKILL ends
          // the nap. If it never comes (deadline disabled) we wake and
          // grade normally — chaos must never corrupt a surviving run.
          std::this_thread::sleep_for(
              duration_from_seconds(chaos->stall_seconds));
          break;
        case ChaosSpec::Mode::kTrunc: {
          // Half a reply line, then a "clean" exit: the corrupted-stream
          // scenario (EOF with an unterminated line in the buffer).
          const std::string partial =
              "{\"type\":\"shard\",\"shard\":" + std::to_string(shard);
          std::fwrite(partial.data(), 1, partial.size(), out);
          std::fflush(out);
          ::_exit(0);
        }
        case ChaosSpec::Mode::kNone:
          break;
      }
    }
    const std::size_t lo = req.plan.batch_start[shard];
    const std::size_t n = req.plan.batch_size(shard);
    auto shard_span = obs::tracer().span("shard", "worker");
    shard_span.arg("shard", Json(static_cast<std::size_t>(shard)));
    shard_span.arg("test", Json(req.test));
    shard_span.arg("faults", Json(n));
    const auto t0 = std::chrono::steady_clock::now();
    const LaneMask mask =
        workload.run_batch(req, std::span(req.planned).subspan(lo, n));
    Json reply = Json::object();
    reply.set("type", "shard");
    reply.set("shard", static_cast<std::size_t>(shard));
    reply.set("mask", lane_mask_to_json(mask));
    reply.set("seconds", seconds_since(t0));
    shard_span.end();
    return write_line(out, reply);
  };

  std::string line;
  while (read_line(in, line)) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    try {
      const ShardRequest req = shard_request_from_json(Json::parse(line));
      // Telemetry is sticky once requested: state rebuilt during an
      // instrumented campaign stays attributable.
      if (req.telemetry) {
        obs::tracer().set_enabled(true);
        obs::metrics().set_enabled(true);
      }
      // Fingerprinting first forces the workload's one-time state rebuild
      // (netlist, reference trace) before any shard is timed: the
      // per-shard seconds are the adaptive scheduler's profile input and
      // must measure grading, not setup.
      auto rebuild_span = obs::tracer().span("rebuild_state", "worker");
      rebuild_span.arg("test", Json(req.test));
      const std::uint64_t state_fp = workload.state_fingerprint(req);
      rebuild_span.end();
      for (std::uint32_t shard : req.shards)
        if (!grade_one(req, shard)) return 1;
      if (req.dynamic) {
        // Pull dispatch: keep draining grant lines until the final one.
        // EOF here is a coordinator gone mid-request — clean shutdown,
        // same as EOF between requests.
        bool final_grant = false;
        while (!final_grant) {
          if (!read_line(in, line)) return 0;
          if (line.find_first_not_of(" \t") == std::string::npos) continue;
          const Json grant = Json::parse(line);
          const std::string gtype = grant.at("type").as_string();
          if (gtype != "grant")
            throw JsonError("worker: expected a grant, got '" + gtype + "'",
                            grant.at("type").source_offset());
          const Json& granted = grant.at("shards");
          for (std::size_t i = 0; i < granted.size(); ++i) {
            const Json& node = granted.at(i);
            const std::size_t s = node.as_size();
            if (s >= req.plan.batches())
              throw JsonError("grant: shard id out of plan range",
                              node.source_offset());
            if (!grade_one(req, static_cast<std::uint32_t>(s))) return 1;
          }
          final_grant = grant.contains("final") && grant.at("final").as_bool();
        }
      }
      Json done = Json::object();
      done.set("type", "done");
      done.set("test", req.test);
      done.set("universe", workload.universe_size());
      done.set("state_fp", word_to_hex(state_fp));
      if (req.telemetry) {
        // Ship this request's spans/counters as deltas and zero for the
        // next one; the coordinator owns accumulation.
        Json tel = Json::object();
        tel.set("spans", obs::trace_events_to_json(obs::tracer().drain()));
        tel.set("counters", obs::metrics().counters_to_json());
        done.set("telemetry", std::move(tel));
        obs::metrics().reset_values();
      }
      if (!write_line(out, done)) return 1;
    } catch (const std::exception& e) {
      return report(e.what());
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// SubprocessExecutor

SubprocessExecutor::SubprocessExecutor(std::vector<std::string> worker_command,
                                       FleetOptions opts)
    : command_(std::move(worker_command)), opts_(opts) {
  if (command_.empty())
    throw std::invalid_argument("SubprocessExecutor: empty worker command");
  opts_.workers = std::max(1, opts_.workers);
  opts_.max_respawns = std::max(0, opts_.max_respawns);
  opts_.min_workers = std::clamp(opts_.min_workers, 1, opts_.workers);
  if (opts_.hello_timeout <= 0) opts_.hello_timeout = 10.0;
  if (opts_.backoff_base < 0) opts_.backoff_base = 0;
  if (opts_.backoff_cap < opts_.backoff_base)
    opts_.backoff_cap = opts_.backoff_base;
  respawns_left_ = opts_.max_respawns;
  // A worker that dies mid-protocol must surface as an EPIPE write error
  // (handled by the supervisor), not kill the coordinator — but never
  // clobber a handler the embedding application installed.
  const auto prev = std::signal(SIGPIPE, SIG_IGN);
  if (prev != SIG_DFL && prev != SIG_IGN) std::signal(SIGPIPE, prev);
}

SubprocessExecutor::~SubprocessExecutor() {
  std::lock_guard lock(mu_);
  shutdown_all();
}

ExecutorHealth SubprocessExecutor::health() const {
  std::lock_guard lock(mu_);
  return health_;
}

double SubprocessExecutor::effective_timeout(const ShardWork& work) const {
  // Strictly a liveness knob: whichever deadline fires, recovery re-runs
  // the same shards and the merge is placement-independent.
  constexpr double kFloorSeconds = 30.0;
  if (work.shard_timeout > 0) return work.shard_timeout;
  if (observed_max_seconds_ > 0)
    return std::max(kFloorSeconds, 50.0 * observed_max_seconds_);
  return kFloorSeconds;
}

bool SubprocessExecutor::spawn_worker(std::size_t i) {
  Worker& w = procs_[i];
  w.respawn_scheduled = false;
  const bool is_respawn = w.incarnation > 0;

  std::vector<char*> argv;
  argv.reserve(command_.size() + 1);
  for (const std::string& arg : command_)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  // On any syscall failure the slot goes kDead and (budget permitting) a
  // respawn is scheduled — spawning is supervised like everything else.
  const auto spawn_failed = [&](const std::string& what) {
    std::fprintf(stderr,
                 "olfui: subprocess executor: worker %zu: spawn failed: %s\n",
                 i, what.c_str());
    last_failure_ = "worker " + std::to_string(i) + ": spawn failed: " + what;
    if (w.err) {
      std::fclose(w.err);
      w.err = nullptr;
    }
    w.state = Worker::State::kDead;
    ++w.failures;
    if (respawns_left_ > 0) {
      --respawns_left_;
      const double delay =
          std::min(opts_.backoff_cap,
                   opts_.backoff_base *
                       std::ldexp(1.0, std::min(w.failures - 1, 20)));
      w.respawn_at = Clock::now() + duration_from_seconds(delay);
      w.respawn_scheduled = true;
    }
    return false;
  };

  int to_child[2], from_child[2];
  // CLOEXEC so a later sibling's exec doesn't inherit (and hold open)
  // this worker's pipe ends; dup2 below clears it on the two fds the
  // child actually uses.
  if (::pipe2(to_child, O_CLOEXEC) != 0)
    return spawn_failed(std::string("pipe: ") + std::strerror(errno));
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    return spawn_failed(std::string("pipe: ") + std::strerror(err));
  }
  // Unlinked temp file for the child's stderr, one per incarnation, so
  // failure reports can quote the child's own diagnostics (stderr_tail).
  // Best-effort — a worker without one just loses the quoted tail.
  // CLOEXEC in the parent copy only; the child's dup2 onto fd 2 clears it.
  w.err = std::tmpfile();
  if (w.err) ::fcntl(::fileno(w.err), F_SETFD, FD_CLOEXEC);
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return spawn_failed(std::string("fork: ") + std::strerror(err));
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    // Redirect stderr into the capture file so a crash report can quote
    // it; the exec-failure message below lands there too.
    if (w.err) ::dup2(::fileno(w.err), STDERR_FILENO);
    // Respawned incarnations announce themselves so worker-side chaos can
    // disarm (see ChaosSpec) — recovery must recover, not re-crash.
    char inc[16];
    std::snprintf(inc, sizeof inc, "%d", w.incarnation);
    ::setenv("OLFUI_WORKER_INCARNATION", inc, 1);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "worker exec '%s': %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  // The reply stream is drained from a poll loop; reads must never block
  // behind a worker that has sent nothing.
  ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
  w.pid = pid;
  w.to_fd = to_child[1];
  w.from_fd = from_child[0];
  w.state = Worker::State::kHello;
  w.rbuf.clear();
  w.inflight.clear();
  w.preamble_sent = w.done_received = w.final_sent = false;
  w.deadline = Clock::now() + duration_from_seconds(opts_.hello_timeout);
  w.deadline_armed = true;
  ++w.incarnation;
  if (is_respawn) {
    ++health_.respawns;
    if (obs::metrics().enabled()) obs::metrics().counter("executor.respawns").add();
    std::fprintf(stderr,
                 "olfui: subprocess executor: respawned worker %zu "
                 "(incarnation %d, pid %ld)\n",
                 i, w.incarnation - 1, static_cast<long>(w.pid));
  }
  return true;
}

void SubprocessExecutor::reap(Worker& w, int* status) {
  *status = 0;
  if (w.pid > 0) posix::waitpid_retry(static_cast<pid_t>(w.pid), status, 0);
  w.pid = -1;
}

void SubprocessExecutor::bound_stderr(Worker& w) {
  if (!w.err) return;
  const int fd = ::fileno(w.err);
  struct stat st{};
  constexpr off_t kMaxBytes = 128 * 1024;
  if (::fstat(fd, &st) != 0 || st.st_size <= kMaxBytes) return;
  // Keep the pre-truncation tail, then rewind: the file description (and
  // its offset) is shared with the child, so the lseek lands its next
  // write at the start of the now-empty file. A line written between the
  // pread and the truncate is lost — bounded capture beats perfect
  // capture for a file that only exists to be quoted in failure reports.
  w.saved_tail = file_tail(fd, st.st_size);
  ::ftruncate(fd, 0);
  ::lseek(fd, 0, SEEK_SET);
}

std::string SubprocessExecutor::stderr_tail(std::size_t worker) {
  if (worker >= procs_.size()) return {};
  Worker& w = procs_[worker];
  std::string current;
  if (w.err) {
    const int fd = ::fileno(w.err);
    struct stat st{};
    if (::fstat(fd, &st) == 0) current = file_tail(fd, st.st_size);
  }
  if (w.saved_tail.empty()) return current;
  if (current.empty()) return w.saved_tail;
  return w.saved_tail + "\n" + current;
}

void SubprocessExecutor::fail_worker(std::size_t i, const std::string& what,
                                     bool timed_out,
                                     std::deque<std::uint32_t>& pending) {
  Worker& w = procs_[i];
  // SIGKILL before reaping: harmless on an already-dead child (waitpid
  // still returns the real exit status), decisive on a wedged one.
  if (w.pid > 0) ::kill(static_cast<pid_t>(w.pid), SIGKILL);
  int status = 0;
  reap(w, &status);
  // Quote the child's own last words — the supervisor's message says what
  // rule fired, the diagnostics that explain *why* live on its stderr.
  const std::string tail = stderr_tail(i);
  std::string msg = "worker " + std::to_string(i) + ": " + what + " (" +
                    describe_exit(status) + ")";
  if (!tail.empty()) msg += "; worker stderr: " + tail;
  last_failure_ = msg;

  const std::size_t reissued = w.inflight.size();
  for (std::uint32_t s : w.inflight) pending.push_back(s);
  health_.shard_reissues += reissued;
  if (timed_out) ++health_.timeouts;
  if (obs::metrics().enabled()) {
    if (reissued)
      obs::metrics().counter("executor.shard_reissues").add(reissued);
    if (timed_out) obs::metrics().counter("executor.timeouts").add();
  }
  std::fprintf(stderr,
               "olfui: subprocess executor: %s; re-queueing %zu shard(s)\n",
               msg.c_str(), reissued);

  if (w.to_fd >= 0) ::close(w.to_fd);
  if (w.from_fd >= 0) ::close(w.from_fd);
  w.to_fd = w.from_fd = -1;
  if (w.err) {
    std::fclose(w.err);
    w.err = nullptr;
  }
  w.saved_tail.clear();
  w.state = Worker::State::kDead;
  w.rbuf.clear();
  w.inflight.clear();
  w.preamble_sent = w.done_received = w.final_sent = false;
  w.deadline_armed = false;
  ++w.failures;
  if (respawns_left_ > 0) {
    --respawns_left_;
    const double delay = std::min(
        opts_.backoff_cap,
        opts_.backoff_base * std::ldexp(1.0, std::min(w.failures - 1, 20)));
    w.respawn_at = Clock::now() + duration_from_seconds(delay);
    w.respawn_scheduled = true;
  }
}

void SubprocessExecutor::fatal(std::size_t worker, const std::string& what) {
  // Deterministic misconfiguration (wrong binary, drifted state, a
  // worker's own error reply): retrying would fail identically, so this
  // path keeps v1's semantics — tear down and throw.
  const std::string tail =
      worker < procs_.size() ? stderr_tail(worker) : std::string();
  shutdown_all();
  throw std::runtime_error("subprocess executor: worker " +
                           std::to_string(worker) + ": " + what +
                           (tail.empty() ? std::string()
                                         : "; worker stderr: " + tail));
}

void SubprocessExecutor::shutdown_all() {
  // Closing stdin is the shutdown signal (serve_worker returns on EOF).
  for (Worker& w : procs_) {
    if (w.to_fd >= 0) ::close(w.to_fd);
    if (w.from_fd >= 0) ::close(w.from_fd);
    w.to_fd = w.from_fd = -1;
  }
  // Grace period for the EOF to land, then SIGKILL: a wedged (stalled)
  // worker never sees the EOF and would hang a blocking wait forever.
  const auto t0 = Clock::now();
  for (Worker& w : procs_) {
    while (w.pid > 0) {
      int status = 0;
      const pid_t r = posix::waitpid_retry(static_cast<pid_t>(w.pid), &status,
                                           WNOHANG);
      if (r != 0) {
        w.pid = -1;
        break;
      }
      if (seconds_since(t0) > 0.5) {
        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
        posix::waitpid_retry(static_cast<pid_t>(w.pid), &status, 0);
        w.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Closed after the wait: the child has written its final words.
    if (w.err) std::fclose(w.err);
    w.err = nullptr;
  }
  procs_.clear();
}

std::vector<ShardResult> SubprocessExecutor::execute(const ShardWork& work) {
  std::lock_guard lock(mu_);
  std::vector<ShardResult> results(work.shards.size());
  if (work.shards.empty()) return results;
  if (work.test.spec.is_null())
    throw std::runtime_error("subprocess executor: test '" + work.test.name +
                             "' has no spec — it cannot be rebuilt remotely");

  const double timeout = effective_timeout(work);
  const std::string context = " during test '" + work.test.name + "'";
  /// Grants held per worker: 1 grading + 1 queued hides the grant round
  /// trip without letting a slow worker hoard work.
  constexpr std::size_t kGrantWindow = 2;

  if (procs_.empty()) {
    procs_.resize(static_cast<std::size_t>(opts_.workers));
    for (std::size_t i = 0; i < procs_.size(); ++i) spawn_worker(i);
  }
  // Reset per-execute() protocol state (workers persist across calls).
  for (Worker& w : procs_) {
    w.preamble_sent = w.done_received = w.final_sent = false;
    w.inflight.clear();
    w.rbuf.clear();
    if (w.state == Worker::State::kReady) w.deadline_armed = false;
  }

  std::unordered_map<std::uint32_t, std::size_t> slot;  // shard id -> index
  slot.reserve(work.shards.size());
  for (std::size_t i = 0; i < work.shards.size(); ++i)
    slot.emplace(work.shards[i], i);
  std::deque<std::uint32_t> pending(work.shards.begin(), work.shards.end());
  std::vector<char> answered(work.shards.size(), 0);
  std::size_t unanswered = work.shards.size();

  // One preamble per worker per execute(): the full O(targets) request
  // with an empty initial grant — all work flows through grant lines.
  Json request = shard_request_to_json(work);
  request.set("shards", Json::array());
  request.set("dynamic", Json(true));
  request.set("heartbeat", Json(true));
  // Side-band spans/counters only when someone is listening; the field's
  // absence keeps the wire bytes identical to pre-telemetry runs.
  if (obs::tracer().enabled() || obs::metrics().enabled())
    request.set("telemetry", Json(true));
  const std::string preamble = request.dump() + "\n";
  std::string done_fp;  // first worker's state_fp; siblings must agree

  const auto send_text = [&](Worker& w, const std::string& text) {
    return posix::write_all(w.to_fd, text.data(), text.size());
  };
  // Every greeted worker gets the preamble, granted work or not: it
  // rebuilds state and replies done, so fingerprint cross-checks (and
  // telemetry lanes) cover the whole fleet exactly as v1's static
  // striping did.
  const auto send_preamble = [&](std::size_t i) {
    Worker& w = procs_[i];
    if (w.preamble_sent) return true;
    if (!send_text(w, preamble)) {
      fail_worker(i, "died rejecting the grade request (write failed)" +
                         context,
                  false, pending);
      return false;
    }
    w.preamble_sent = true;
    return true;
  };

  // Processes one complete reply line from worker i. May fail_worker
  // (recoverable) or fatal (throws).
  const auto handle_line = [&](std::size_t i, const std::string& line) {
    Worker& w = procs_[i];
    if (line.find_first_not_of(" \t") == std::string::npos) return;
    Json reply;
    std::string type;
    try {
      reply = Json::parse(line);
      type = reply.at("type").as_string();
    } catch (const JsonError& e) {
      fail_worker(i, std::string("malformed reply: ") + e.what() + context,
                  false, pending);
      return;
    }
    if (w.state == Worker::State::kHello) {
      if (type != "hello") {
        fail_worker(i, "handshake is not a hello document" + context, false,
                    pending);
        return;
      }
      try {
        if (reply.at("protocol").as_int() != kWorkerProtocolVersion)
          fatal(i, "protocol version mismatch");
        // Pair the worker's monotonic clock with ours at the same (well,
        // one pipe transit later) instant; merged telemetry spans are
        // shifted by this offset onto the coordinator timeline.
        if (reply.contains("ts_us"))
          w.clock_offset_us =
              obs::tracer().now_us() -
              static_cast<std::int64_t>(reply.at("ts_us").as_number());
        // Widest kernel the worker binary instantiates (absent = 64, the
        // pre-width protocol). A worker too narrow for this campaign's
        // lane width is deterministic misconfiguration — every respawn
        // of the same binary would fail the same way, so reject the
        // fleet now, exactly like a universe-size mismatch.
        w.max_lanes = reply.contains("max_lanes")
                          ? reply.at("max_lanes").as_int()
                          : 64;
        if (w.max_lanes < work.lane_width)
          fatal(i, "instantiates at most " + std::to_string(w.max_lanes) +
                       " lanes, campaign needs " +
                       std::to_string(work.lane_width) + context);
      } catch (const JsonError& e) {
        fail_worker(i, std::string("malformed hello: ") + e.what(), false,
                    pending);
        return;
      }
      obs::tracer().set_process_label(w.pid, "worker " + std::to_string(i));
      w.state = Worker::State::kReady;
      w.deadline_armed = false;
      send_preamble(i);
      return;
    }
    if (type == "heartbeat") {
      // The progress rule: a worker that announces a shard is alive and
      // earns a fresh deadline for grading it.
      w.deadline = Clock::now() + duration_from_seconds(timeout);
      return;
    }
    if (type == "shard") {
      std::uint32_t shard = 0;
      ShardResult r;
      try {
        shard = static_cast<std::uint32_t>(reply.at("shard").as_size());
        r.mask = lane_mask_from_json(reply.at("mask"));
        r.seconds = reply.at("seconds").as_number();
      } catch (const JsonError& e) {
        fail_worker(i, std::string("malformed shard reply: ") + e.what() +
                           context,
                    false, pending);
        return;
      }
      const auto granted =
          std::find(w.inflight.begin(), w.inflight.end(), shard);
      const auto it = slot.find(shard);
      if (granted == w.inflight.end() || it == slot.end() ||
          answered[it->second]) {
        fail_worker(i, "answered shard " + std::to_string(shard) +
                           " it was not granted (or twice)" + context,
                    false, pending);
        return;
      }
      w.inflight.erase(granted);
      answered[it->second] = 1;
      results[it->second] = r;
      --unanswered;
      observed_max_seconds_ = std::max(observed_max_seconds_, r.seconds);
      // Worker histograms don't travel the wire (only counter deltas do);
      // the coordinator observes the reported shard time instead, so the
      // distribution covers both executors.
      if (obs::metrics().enabled())
        obs::metrics()
            .histogram("campaign.shard_seconds", {0.001, 0.01, 0.1, 1.0, 10.0})
            .observe(r.seconds);
      // Progress resets the deadline; an idle worker (pending final
      // grant) has no clock running against it.
      if (w.inflight.empty())
        w.deadline_armed = false;
      else
        w.deadline = Clock::now() + duration_from_seconds(timeout);
      if (work.progress) work.progress(work.plan.batch_size(shard));
      return;
    }
    if (type == "done") {
      if (!w.final_sent) {
        fail_worker(i, "sent done before the final grant" + context, false,
                    pending);
        return;
      }
      std::string fp;
      try {
        if (reply.at("universe").as_size() != work.universe)
          fatal(i, "rebuilt a different universe (" +
                       std::to_string(reply.at("universe").as_size()) +
                       " faults, coordinator has " +
                       std::to_string(work.universe) + ")" + context);
        fp = reply.at("state_fp").as_string();
      } catch (const JsonError& e) {
        fail_worker(i, std::string("malformed done reply: ") + e.what() +
                           context,
                    false, pending);
        return;
      }
      // Siblings rebuilt the same test from the same spec; disagreeing
      // fingerprints mean at least one graded against drifted state (the
      // worker-side spec.state_fp check is the strong guard, but it is
      // opt-in — this one costs nothing and is not).
      if (done_fp.empty())
        done_fp = fp;
      else if (fp != done_fp)
        fatal(i, "rebuilt state disagrees with a sibling worker (" + fp +
                     " vs " + done_fp + ")" + context);
      if (reply.contains("telemetry")) {
        try {
          merge_worker_telemetry(i, reply.at("telemetry"));
        } catch (const JsonError& e) {
          fail_worker(i, std::string("malformed telemetry: ") + e.what() +
                             context,
                      false, pending);
          return;
        }
      }
      w.done_received = true;
      w.deadline_armed = false;
      return;
    }
    if (type == "error") {
      std::string message = "(error reply without a message)";
      try {
        message = reply.at("message").as_string();
      } catch (const JsonError&) {
      }
      fatal(i, "reported: " + message + context);
    }
    fail_worker(i, "unknown reply type '" + type + "'" + context, false,
                pending);
  };

  // Drains worker i's pipe without blocking, processes complete lines,
  // and handles EOF (the crash/exit detection path).
  const auto drain_worker = [&](std::size_t i) {
    Worker& w = procs_[i];
    bool eof = false;
    char buf[4096];
    for (;;) {
      const ssize_t n = posix::read_retry(w.from_fd, buf, sizeof buf);
      if (n > 0) {
        w.rbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      eof = true;  // 0 = EOF; any other error means the pipe is dead too
      break;
    }
    std::string line;
    while (w.state != Worker::State::kDead && take_line(w.rbuf, line))
      handle_line(i, line);
    if (w.state == Worker::State::kDead || !eof) return;
    std::string what =
        w.state == Worker::State::kHello ? "died without a hello" : "died";
    // Bytes without a terminator: the worker was cut off mid-line, so the
    // stream is corrupt as well as closed.
    if (!w.rbuf.empty()) what += " mid-reply (truncated line)";
    if (w.state != Worker::State::kHello) {
      what += " with " + std::to_string(w.inflight.size()) +
              " shard(s) in flight";
    }
    fail_worker(i, what + context, false, pending);
  };

  for (;;) {
    auto now = Clock::now();

    // Due respawns first: a recovered slot can absorb grants this round.
    for (std::size_t i = 0; i < procs_.size(); ++i)
      if (procs_[i].respawn_scheduled && now >= procs_[i].respawn_at)
        spawn_worker(i);

    // Degradation ladder: when fewer workers are live or pending respawn
    // than the floor, stop supervising and finish the work here.
    std::size_t capable = 0;
    for (const Worker& w : procs_)
      if (w.state != Worker::State::kDead || w.respawn_scheduled) ++capable;
    if (capable < static_cast<std::size_t>(opts_.min_workers)) {
      for (Worker& w : procs_) {
        if (w.inflight.empty()) continue;
        for (std::uint32_t s : w.inflight) pending.push_back(s);
        health_.shard_reissues += w.inflight.size();
        w.inflight.clear();
      }
      shutdown_all();
      const std::string why =
          "worker fleet collapsed below min_workers=" +
          std::to_string(opts_.min_workers) +
          " with the respawn budget exhausted" + context +
          (last_failure_.empty() ? std::string()
                                 : "; last failure: " + last_failure_);
      if (!work.test.make_runner)
        throw std::runtime_error(
            "subprocess executor: " + why +
            " — no in-process fallback is available for this test");
      std::vector<std::uint32_t> remaining;
      remaining.reserve(unanswered);
      for (std::size_t k = 0; k < work.shards.size(); ++k)
        if (!answered[k]) remaining.push_back(work.shards[k]);
      std::fprintf(stderr,
                   "olfui: subprocess executor: %s — degrading to in-process "
                   "grading for %zu remaining shard(s)\n",
                   why.c_str(), remaining.size());
      auto span = obs::tracer().span("degrade", "executor");
      span.arg("shards", Json(remaining.size()));
      if (!fallback_) fallback_ = std::make_unique<InProcessExecutor>(0);
      const ShardWork sub{work.plan,
                          work.targets,
                          work.planned,
                          std::span<const std::uint32_t>(remaining),
                          work.test,
                          work.fault_model,
                          work.universe,
                          work.progress,
                          work.shard_timeout,
                          work.lane_width};
      const std::vector<ShardResult> sub_results = fallback_->execute(sub);
      for (std::size_t k = 0; k < remaining.size(); ++k) {
        const std::size_t idx = slot.at(remaining[k]);
        results[idx] = sub_results[k];
        answered[idx] = 1;
      }
      unanswered -= remaining.size();
      health_.degraded_shards += remaining.size();
      if (obs::metrics().enabled())
        obs::metrics().counter("executor.degraded").add(remaining.size());
      span.end();
      return results;
    }

    if (unanswered == 0) {
      // Finalize: ask each engaged worker for its done (universe and
      // fingerprint cross-checks, telemetry). Exit once none is owed.
      bool waiting = false;
      for (std::size_t i = 0; i < procs_.size(); ++i) {
        Worker& w = procs_[i];
        if (!w.preamble_sent || w.done_received ||
            w.state != Worker::State::kReady)
          continue;
        if (!w.final_sent) {
          Json grant = Json::object();
          grant.set("type", "grant");
          grant.set("shards", Json::array());
          grant.set("final", Json(true));
          if (!send_text(w, grant.dump() + "\n")) {
            fail_worker(i, "died rejecting the final grant (write failed)" +
                               context,
                        false, pending);
            continue;
          }
          w.final_sent = true;
          w.deadline = now + duration_from_seconds(timeout);
          w.deadline_armed = true;
        }
        waiting = true;
      }
      if (!waiting) return results;
    } else {
      // Breadth-first pull dispatch: one shard per pass per worker with
      // window room, so every live worker engages before any one of them
      // stacks up a queue — slow workers absorb less work.
      bool granted_any = true;
      while (granted_any && !pending.empty()) {
        granted_any = false;
        for (std::size_t i = 0; i < procs_.size() && !pending.empty(); ++i) {
          Worker& w = procs_[i];
          if (w.state != Worker::State::kReady ||
              w.inflight.size() >= kGrantWindow)
            continue;
          if (!send_preamble(i)) continue;
          const std::uint32_t s = pending.front();
          Json grant = Json::object();
          grant.set("type", "grant");
          Json arr = Json::array();
          arr.push_back(static_cast<std::size_t>(s));
          grant.set("shards", std::move(arr));
          if (!send_text(w, grant.dump() + "\n")) {
            fail_worker(i, "died rejecting a grant (write failed)" + context,
                        false, pending);
            continue;
          }
          pending.pop_front();
          w.inflight.push_back(s);
          if (!w.deadline_armed) {
            w.deadline = now + duration_from_seconds(timeout);
            w.deadline_armed = true;
          }
          granted_any = true;
        }
      }
    }

    // Sleep until the next reply, deadline, or scheduled respawn.
    int timeout_ms = 1000;
    const auto consider = [&](Clock::time_point t) {
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(t - now)
              .count();
      timeout_ms = std::clamp(static_cast<int>(std::max<long long>(ms, 0)),
                              0, timeout_ms);
    };
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_worker;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      Worker& w = procs_[i];
      if (w.state == Worker::State::kDead) {
        if (w.respawn_scheduled) consider(w.respawn_at);
        continue;
      }
      bound_stderr(w);
      if (w.deadline_armed) consider(w.deadline);
      fds.push_back({w.from_fd, POLLIN, 0});
      fd_worker.push_back(i);
    }
    // poll with zero fds is a plain sleep — the fleet may be entirely
    // between incarnations, waiting on backoff.
    posix::poll_retry(fds.empty() ? nullptr : fds.data(), fds.size(),
                      timeout_ms);
    now = Clock::now();

    for (std::size_t k = 0; k < fds.size(); ++k)
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
        if (procs_[fd_worker[k]].state != Worker::State::kDead)
          drain_worker(fd_worker[k]);

    // Deadline sweep last, after any progress that poll surfaced.
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      Worker& w = procs_[i];
      if (w.state == Worker::State::kDead || !w.deadline_armed ||
          now < w.deadline)
        continue;
      if (w.state == Worker::State::kHello) {
        fail_worker(i, "no hello within " +
                           std::to_string(opts_.hello_timeout) +
                           "s (handshake deadline expired)",
                    true, pending);
      } else {
        fail_worker(i, "no progress within " + std::to_string(timeout) +
                           "s (shard deadline expired) with " +
                           std::to_string(w.inflight.size()) +
                           " shard(s) in flight" + context,
                    true, pending);
      }
    }
  }
}

void SubprocessExecutor::merge_worker_telemetry(std::size_t worker,
                                                const Json& telemetry) {
  const Worker& w = procs_[worker];
  if (telemetry.contains("spans") && obs::tracer().enabled())
    obs::tracer().merge_foreign(
        obs::trace_events_from_json(telemetry.at("spans")), w.pid,
        w.clock_offset_us);
  if (telemetry.contains("counters") && obs::metrics().enabled())
    obs::metrics().merge_counters(telemetry.at("counters"));
}

}  // namespace olfui
