#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "campaign/scheduler.hpp"
#include "campaign/shard_queue.hpp"
#include "fault/tdf.hpp"
#include "netlist/netlist.hpp"

namespace olfui {

namespace {

/// Undetected (unless dropping is off), testable faults in id order.
std::vector<FaultId> campaign_targets(const FaultList& fl, bool drop_detected) {
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
    if (drop_detected && fl.detect_state(f) == DetectState::kDetected) continue;
    targets.push_back(f);
  }
  return targets;
}

class FunctionBatchRunner final : public FaultBatchRunner {
 public:
  explicit FunctionBatchRunner(
      std::function<std::uint64_t(std::span<const FaultId>)> kernel)
      : kernel_(std::move(kernel)) {}
  std::uint64_t run_batch(std::span<const FaultId> faults) override {
    return kernel_(faults);
  }

 private:
  std::function<std::uint64_t(std::span<const FaultId>)> kernel_;
};

}  // namespace

CampaignTest make_function_test(
    std::string name,
    std::function<std::uint64_t(std::span<const FaultId>)> kernel,
    int good_cycles) {
  CampaignTest test;
  test.name = std::move(name);
  test.good_cycles = good_cycles;
  test.make_runner = [kernel = std::move(kernel)]() {
    return std::make_unique<FunctionBatchRunner>(kernel);
  };
  return test;
}

bool CampaignResult::operator==(const CampaignResult& o) const {
  return universe == o.universe && fault_model == o.fault_model &&
         total_new_detections == o.total_new_detections &&
         detected == o.detected && tests == o.tests && classes == o.classes &&
         raw_coverage == o.raw_coverage && pruned_coverage == o.pruned_coverage;
}

CampaignEngine::CampaignEngine(const FaultUniverse& universe,
                               CampaignOptions opts)
    : universe_(&universe), opts_(opts) {
  opts_.batch_size = std::clamp(opts_.batch_size, 1, 63);
}

int CampaignEngine::resolved_threads() const {
  if (opts_.threads > 0) return opts_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

WorkerPool& CampaignEngine::pool() const {
  if (!pool_)
    pool_ = std::make_unique<WorkerPool>(
        static_cast<std::size_t>(resolved_threads()) - 1);
  return *pool_;
}

const BatchScheduler& CampaignEngine::scheduler() const {
  static const FixedScheduler kFixed;
  return opts_.scheduler ? *opts_.scheduler : kFixed;
}

BitVec CampaignEngine::grade(std::span<const FaultId> targets,
                             const CampaignTest& test,
                             const CampaignProgress& progress,
                             std::vector<double>* shard_seconds) const {
  BitVec detected(targets.size());
  if (targets.empty()) return detected;

  // Batch formation is the scheduler's: the plan permutes the targets and
  // draws the batch boundaries; everything below (sharding, merge,
  // timings) is plan-shaped. A malformed plan throws here rather than
  // silently dropping faults.
  const ScheduleContext ctx{static_cast<std::size_t>(opts_.batch_size),
                            test.name};
  const BatchPlan plan = scheduler().plan(targets, ctx);
  plan.validate(targets.size(), 63);
  std::vector<FaultId> planned(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    planned[i] = targets[plan.order[i]];

  const std::size_t shards = plan.batches();
  std::vector<std::uint64_t> results(shards, 0);
  std::vector<double> timings(shards, 0.0);

  std::mutex progress_mu;
  std::size_t graded = 0;
  const auto report = [&](std::size_t n) {
    if (!progress) return;
    std::lock_guard lock(progress_mu);
    graded += n;
    progress(test.name, graded, targets.size());
  };

  const auto worker = [&](ShardQueue& queue, std::size_t w) {
    std::unique_ptr<FaultBatchRunner> runner;  // created on first shard
    std::size_t shard;
    while (queue.pop(w, shard)) {
      if (!runner) runner = test.make_runner();
      const std::size_t lo = plan.batch_start[shard];
      const std::size_t n = plan.batch_size(shard);
      const auto t0 = std::chrono::steady_clock::now();
      results[shard] = runner->run_batch(std::span(planned).subspan(lo, n));
      // Slot-indexed by shard id (never completion order): the report's
      // timing layout stays thread-count independent, matching the
      // detection merge below.
      timings[shard] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      report(n);
    }
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolved_threads()), shards);
  ShardQueue queue(shards, workers);
  if (workers <= 1) {
    worker(queue, 0);
  } else {
    // Fan out over the persistent pool; it captures a throw from
    // make_runner()/run_batch() on any participant and rethrows the first
    // one here, matching the 1-thread path. Serialized so a shared const
    // engine never dispatches two jobs onto one pool.
    std::lock_guard lock(pool_mu_);
    pool().run(workers, [&](std::size_t w) { worker(queue, w); });
  }

  // Deterministic merge: shard order, then lane order within the shard,
  // mapped back through the plan's permutation — so any partition of the
  // targets yields the same detection flags in target order.
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t lo = plan.batch_start[shard];
    const std::size_t n = plan.batch_size(shard);
    for (std::size_t j = 0; j < n; ++j)
      if (results[shard] & (1ULL << j)) detected.set(plan.order[lo + j], true);
  }
  if (shard_seconds)
    shard_seconds->insert(shard_seconds->end(), timings.begin(), timings.end());
  return detected;
}

CampaignResult CampaignEngine::run(FaultList& fl,
                                   std::span<const CampaignTest> tests,
                                   const CampaignProgress& progress) const {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  result.universe = universe_->size();
  result.fault_model = opts_.fault_model;
  result.stats.schedule_policy = std::string(scheduler().name());

  for (const CampaignTest& test : tests) {
    const std::vector<FaultId> targets =
        campaign_targets(fl, opts_.fault_dropping);
    CampaignResult::PerTest pt;
    pt.name = test.name;
    pt.good_cycles = test.good_cycles;
    pt.faults_targeted = targets.size();

    // One timing slot lands per shard, so the scheduler's actual batch
    // count (policies may split or regroup) is the timing delta.
    const std::size_t shards_before = result.stats.shard_seconds.size();
    const BitVec det =
        grade(targets, test, progress, &result.stats.shard_seconds);
    pt.batches = result.stats.shard_seconds.size() - shards_before;
    for (std::size_t i = det.find_first(); i < det.size();
         i = det.find_next(i + 1)) {
      if (fl.detect_state(targets[i]) == DetectState::kUndetected) {
        fl.set_detected(targets[i]);
        ++pt.new_detections;
      }
    }
    result.total_new_detections += pt.new_detections;
    result.stats.faults_simulated += targets.size();
    result.stats.batches += pt.batches;
    result.tests.push_back(std::move(pt));
  }

  // Final detection state and coverage figures.
  result.detected.resize(fl.size());
  for (FaultId f = 0; f < fl.size(); ++f)
    if (fl.detect_state(f) == DetectState::kDetected)
      result.detected.set(f, true);
  result.raw_coverage = fl.raw_coverage();
  result.pruned_coverage = fl.pruned_coverage();

  // Per-class coverage: polarity, Table-I source, and top-of-hierarchy
  // module. std::map keeps class order deterministic.
  std::map<std::string, CampaignResult::ClassCoverage> classes;
  const Netlist& nl = universe_->netlist();
  for (FaultId f = 0; f < universe_->size(); ++f) {
    const Fault& fault = universe_->fault(f);
    const bool det = fl.detect_state(f) == DetectState::kDetected;
    const auto tally = [&](std::string name) {
      CampaignResult::ClassCoverage& row = classes[name];
      row.name = std::move(name);
      ++row.total;
      if (det) ++row.detected;
    };
    tally(opts_.fault_model == FaultModel::kTransition
              ? std::string(tdf_class_name(fault))
              : (fault.sa1 ? "sa1" : "sa0"));
    const OnlineSource src = fl.online_source(f);
    if (src != OnlineSource::kNone)
      tally("source:" + std::string(to_string(src)));
    const std::string& cell = nl.cell(fault.pin.cell).name;
    const auto slash = cell.find('/');
    tally("module:" + (slash == std::string::npos ? std::string("<top>")
                                                  : cell.substr(0, slash)));
  }
  result.classes.reserve(classes.size());
  for (auto& [key, row] : classes) result.classes.push_back(std::move(row));

  result.stats.threads = resolved_threads();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.stats.faults_per_second =
      result.stats.wall_seconds > 0
          ? static_cast<double>(result.stats.faults_simulated) /
                result.stats.wall_seconds
          : 0.0;
  return result;
}

}  // namespace olfui
