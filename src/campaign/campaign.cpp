#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/executor.hpp"
#include "campaign/scheduler.hpp"
#include "fault/tdf.hpp"
#include "netlist/netlist.hpp"
#include "obs/trace.hpp"

namespace olfui {

namespace {

/// Undetected (unless dropping is off), testable faults in id order,
/// filtered to `mask`'s set bits when given and truncated to `limit` when
/// nonzero (the smoke-slicing knob).
std::vector<FaultId> campaign_targets(const FaultList& fl, bool drop_detected,
                                      std::size_t limit, const BitVec* mask) {
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (mask && !mask->get(f)) continue;
    if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
    if (drop_detected && fl.detect_state(f) == DetectState::kDetected) continue;
    targets.push_back(f);
    if (limit && targets.size() == limit) break;
  }
  return targets;
}

class FunctionBatchRunner final : public FaultBatchRunner {
 public:
  explicit FunctionBatchRunner(
      std::function<LaneMask(std::span<const FaultId>)> kernel)
      : kernel_(std::move(kernel)) {}
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return kernel_(faults);
  }

 private:
  std::function<LaneMask(std::span<const FaultId>)> kernel_;
};

}  // namespace

CampaignTest make_function_test(
    std::string name,
    std::function<LaneMask(std::span<const FaultId>)> kernel,
    int good_cycles) {
  CampaignTest test;
  test.name = std::move(name);
  test.good_cycles = good_cycles;
  test.make_runner = [kernel = std::move(kernel)]() {
    return std::make_unique<FunctionBatchRunner>(kernel);
  };
  return test;
}

bool CampaignResult::operator==(const CampaignResult& o) const {
  return universe == o.universe && fault_model == o.fault_model &&
         total_new_detections == o.total_new_detections &&
         detected == o.detected && tests == o.tests && classes == o.classes &&
         raw_coverage == o.raw_coverage && pruned_coverage == o.pruned_coverage;
}

CampaignEngine::CampaignEngine(const FaultUniverse& universe,
                               CampaignOptions opts)
    : universe_(&universe), opts_(opts) {
  // Unsupported widths fall back to the scalar 64-lane kernel, and the
  // batch size is bounded by the resolved width (lane 0 is the good
  // machine, so a W-lane pass grades at most W-1 faults). batch_size == 0
  // asks for the width's natural maximum.
  opts_.lane_width = resolve_lane_width(opts_.lane_width);
  const int max_batch = opts_.lane_width - 1;
  opts_.batch_size = opts_.batch_size == 0
                         ? max_batch
                         : std::clamp(opts_.batch_size, 1, max_batch);
}

int CampaignEngine::resolved_threads() const {
  if (opts_.threads > 0) return opts_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

const BatchScheduler& CampaignEngine::scheduler() const {
  static const FixedScheduler kFixed;
  return opts_.scheduler ? *opts_.scheduler : kFixed;
}

ShardExecutor& CampaignEngine::executor() const {
  if (opts_.executor) return *opts_.executor;
  std::lock_guard lock(exec_mu_);
  if (!default_executor_)
    default_executor_ = std::make_shared<InProcessExecutor>(opts_.threads);
  return *default_executor_;
}

BitVec CampaignEngine::grade(std::span<const FaultId> targets,
                             const CampaignTest& test,
                             const CampaignProgress& progress,
                             std::vector<double>* shard_seconds) const {
  BitVec detected(targets.size());
  if (targets.empty()) return detected;

  // --- plan ---------------------------------------------------------------
  // Batch formation is the scheduler's: the plan permutes the targets and
  // draws the batch boundaries; everything below (execution, merge,
  // timings) is plan-shaped. A malformed plan throws here rather than
  // silently dropping faults.
  auto plan_span = obs::tracer().span("plan", "campaign");
  plan_span.arg("test", Json(test.name));
  plan_span.arg("targets", Json(targets.size()));
  const ScheduleContext ctx{static_cast<std::size_t>(opts_.batch_size),
                            test.name};
  const BatchPlan plan = scheduler().plan(targets, ctx);
  plan.validate(targets.size(),
                static_cast<std::size_t>(opts_.lane_width - 1));
  std::vector<FaultId> planned(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    planned[i] = targets[plan.order[i]];
  std::vector<std::uint32_t> shard_ids(plan.batches());
  std::iota(shard_ids.begin(), shard_ids.end(), 0u);
  plan_span.arg("shards", Json(plan.batches()));
  plan_span.end();

  // --- execute ------------------------------------------------------------
  // Where the shards run is the executor's (executor.hpp); a lost or
  // failed shard throws out of execute(), never shrinks the merge.
  std::mutex progress_mu;
  std::size_t graded = 0;
  ShardWork work{plan,       targets,           planned,
                 shard_ids,  test,              opts_.fault_model,
                 universe_->size(),             {},
                 opts_.shard_timeout,           opts_.lane_width};
  if (progress)
    work.progress = [&](std::size_t n) {
      std::lock_guard lock(progress_mu);
      graded += n;
      progress(test.name, graded, targets.size());
    };
  auto exec_span = obs::tracer().span("execute", "campaign");
  exec_span.arg("test", Json(test.name));
  exec_span.arg("shards", Json(plan.batches()));
  const std::vector<ShardResult> results = executor().execute(work);
  exec_span.end();

  // --- merge --------------------------------------------------------------
  // Deterministic: shard order, then lane order within the shard, mapped
  // back through the plan's permutation — so any partition of the targets,
  // run anywhere, yields the same detection flags in target order.
  // Timings stay slot-indexed by shard id (never completion order), so
  // the report's layout is thread- and placement-independent too.
  auto merge_span = obs::tracer().span("merge", "campaign");
  merge_span.arg("test", Json(test.name));
  for (std::size_t shard = 0; shard < plan.batches(); ++shard) {
    const std::size_t lo = plan.batch_start[shard];
    const std::size_t n = plan.batch_size(shard);
    for (std::size_t j = 0; j < n; ++j)
      if (results[shard].mask.bit(static_cast<int>(j)))
        detected.set(plan.order[lo + j], true);
  }
  if (shard_seconds)
    for (const ShardResult& r : results) shard_seconds->push_back(r.seconds);
  return detected;
}

CampaignResult CampaignEngine::run(FaultList& fl,
                                   std::span<const CampaignTest> tests,
                                   const CampaignProgress& progress) const {
  CampaignResult result;
  result.universe = universe_->size();
  result.fault_model = opts_.fault_model;
  result.stats.schedule_policy = std::string(scheduler().name());
  result.stats.executor = std::string(executor().name());
  result.stats.options_hash = campaign_options_hash(opts_);

  // --- cache lookup -------------------------------------------------------
  // Ahead of any planning or execution: a full hit decodes the stored
  // deterministic payload and returns with zero shards executed — no plan,
  // no executor work, no worker spawn (SubprocessExecutor spawns lazily on
  // its first execute(), which a hit never reaches). Masked or spec-less
  // campaigns are not cacheable and bypass the lookup entirely.
  CacheKey cache_key;
  bool cacheable = false;
  if (opts_.cache) {
    result.stats.cache = "bypass";
    const std::uint64_t tests_fp = campaign_tests_fingerprint(tests);
    if (!opts_.target_mask && tests_fp != 0) {
      cacheable = true;
      cache_key.universe_fp =
          fnv1a64_word(fault_list_fingerprint(fl), universe_fingerprint(*universe_));
      cache_key.trace_fp = tests_fp;
      cache_key.plan_hash = scheduler().fingerprint();
      cache_key.options_hash = result.stats.options_hash;
      cache_key.fault_model = std::string(to_string(opts_.fault_model));
      cache_key.lane_width = opts_.lane_width;
      auto lookup_span = obs::tracer().span("cache_lookup", "campaign");
      std::optional<CampaignResult> hit = opts_.cache->lookup(cache_key);
      lookup_span.arg("outcome", Json(std::string(hit ? "hit" : "miss")));
      lookup_span.end();
      if (hit) {
        CampaignResult cached = std::move(*hit);
        // The cached detection state replays onto the fault list exactly
        // as the original run left it (the key covers fl's start state,
        // so the delta is the cached run's own detections).
        for (std::size_t f = cached.detected.find_first();
             f < cached.detected.size(); f = cached.detected.find_next(f + 1))
          if (fl.detect_state(static_cast<FaultId>(f)) ==
              DetectState::kUndetected)
            fl.set_detected(static_cast<FaultId>(f));
        // The payload carries no stats; label this run's own context.
        cached.stats.schedule_policy = result.stats.schedule_policy;
        cached.stats.executor = result.stats.executor;
        cached.stats.threads = resolved_threads();
        cached.stats.options_hash = result.stats.options_hash;
        cached.stats.cache = "hit";
        return cached;
      }
      result.stats.cache = "miss";
    }
  }

  // Recovery counters are cumulative on the executor (it outlives runs);
  // the run reports its own delta.
  const ExecutorHealth health0 = executor().health();

  for (const CampaignTest& test : tests) {
    const std::vector<FaultId> targets = campaign_targets(
        fl, opts_.fault_dropping, opts_.target_limit, opts_.target_mask.get());
    CampaignResult::PerTest pt;
    pt.name = test.name;
    pt.good_cycles = test.good_cycles;
    pt.faults_targeted = targets.size();

    // One timing slot lands per shard, so the scheduler's actual batch
    // count (policies may split or regroup) is the timing delta.
    const std::size_t shards_before = result.stats.shard_seconds.size();
    // wall_seconds is the sum of per-grade() monotonic clock pairs — each
    // bracket encloses exactly one plan/execute/merge pass, so every
    // shard's timing slot nests inside one bracket and bookkeeping
    // between tests (class tallies, fault-list updates) never leaks in.
    const auto g0 = std::chrono::steady_clock::now();
    const BitVec det =
        grade(targets, test, progress, &result.stats.shard_seconds);
    result.stats.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - g0)
            .count();
    pt.batches = result.stats.shard_seconds.size() - shards_before;
    for (std::size_t i = det.find_first(); i < det.size();
         i = det.find_next(i + 1)) {
      if (fl.detect_state(targets[i]) == DetectState::kUndetected) {
        fl.set_detected(targets[i]);
        ++pt.new_detections;
      }
    }
    result.total_new_detections += pt.new_detections;
    result.stats.faults_simulated += targets.size();
    result.stats.batches += pt.batches;
    result.tests.push_back(std::move(pt));
  }

  // Final detection state and coverage figures.
  result.detected.resize(fl.size());
  for (FaultId f = 0; f < fl.size(); ++f)
    if (fl.detect_state(f) == DetectState::kDetected)
      result.detected.set(f, true);
  result.raw_coverage = fl.raw_coverage();
  result.pruned_coverage = fl.pruned_coverage();

  // Per-class coverage: polarity, Table-I source, and top-of-hierarchy
  // module. std::map keeps class order deterministic.
  std::map<std::string, CampaignResult::ClassCoverage> classes;
  const Netlist& nl = universe_->netlist();
  for (FaultId f = 0; f < universe_->size(); ++f) {
    const Fault& fault = universe_->fault(f);
    const bool det = fl.detect_state(f) == DetectState::kDetected;
    const auto tally = [&](std::string name) {
      CampaignResult::ClassCoverage& row = classes[name];
      row.name = std::move(name);
      ++row.total;
      if (det) ++row.detected;
    };
    tally(opts_.fault_model == FaultModel::kTransition
              ? std::string(tdf_class_name(fault))
              : (fault.sa1 ? "sa1" : "sa0"));
    const OnlineSource src = fl.online_source(f);
    if (src != OnlineSource::kNone)
      tally("source:" + std::string(to_string(src)));
    const std::string& cell = nl.cell(fault.pin.cell).name;
    const auto slash = cell.find('/');
    tally("module:" + (slash == std::string::npos ? std::string("<top>")
                                                  : cell.substr(0, slash)));
  }
  result.classes.reserve(classes.size());
  for (auto& [key, row] : classes) result.classes.push_back(std::move(row));

  const ExecutorHealth health1 = executor().health();
  result.stats.respawns = health1.respawns - health0.respawns;
  result.stats.shard_reissues = health1.shard_reissues - health0.shard_reissues;
  result.stats.timeouts = health1.timeouts - health0.timeouts;
  result.stats.degraded_shards =
      health1.degraded_shards - health0.degraded_shards;

  result.stats.threads = resolved_threads();
  result.stats.faults_per_second =
      result.stats.wall_seconds > 0
          ? static_cast<double>(result.stats.faults_simulated) /
                result.stats.wall_seconds
          : 0.0;
  if (cacheable) opts_.cache->store(cache_key, result);
  return result;
}

}  // namespace olfui
