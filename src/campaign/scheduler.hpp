// olfui/campaign: pluggable batch formation (the scheduling seam).
//
// CampaignEngine::grade used to hard-wire fixed contiguous 63-lane spans;
// the scheduler turns batch formation into a policy behind one seam. A
// policy returns a BatchPlan — a permutation of the target indices plus
// batch boundaries — and the engine gathers, shards, and merges through
// the plan, so a policy controls WHICH faults share a simulator pass and
// HOW big the passes are, never what a pass computes.
//
// Three policies ship:
//  * FixedScheduler — contiguous batch_size spans in target order, the
//    pre-seam behaviour (identity plan, bit-identical batches and merge);
//  * ConeScheduler — groups faults whose fanout cones overlap, using the
//    static ConeAnalysis Bloom signatures (sim/packed.hpp) keyed on each
//    fault's effect net (fault/universe.hpp). Cone-mates activate the
//    same region of the event-driven kernel and tend to diverge on the
//    same cycles, so batches stay small in active set and uniform in
//    early exit;
//  * AdaptiveScheduler — profile-guided shard splitting: replays a
//    previous CampaignResult's per-shard wall times
//    (stats.shard_seconds) and halves the shards that ran hot, shrinking
//    the straggler tail that fixed spans leave on skewed early-exit
//    workloads.
//
// Determinism contract: plan() must be a pure function of (targets,
// context, construction-time state) — never of thread count, timing, or
// global state — so campaign results stay bit-identical for any worker
// count. Faults are graded independently within a batch (lanes are
// separate machines) and the engine's merge maps plan positions back to
// target order, so every valid plan produces the same detection set; the
// scheduler-equivalence test asserts this across all three policies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/universe.hpp"
#include "sim/packed.hpp"

namespace olfui {

struct CampaignResult;  // campaign.hpp (adaptive profiles)

/// What the engine tells a policy about the grade() call being planned.
struct ScheduleContext {
  /// Upper bound on batch size (the engine's clamped CampaignOptions
  /// value, never above 63 — lane 0 is the good machine).
  std::size_t batch_size = 63;
  /// Campaign test being graded (profile lookup key for adaptive plans).
  std::string_view test_name;
};

/// One grade() call's batch formation: a permutation of the target
/// indices plus batch boundaries. Batch b grades targets[order[i]] for i
/// in [batch_start[b], batch_start[b+1]).
struct BatchPlan {
  std::vector<std::uint32_t> order;        ///< permutation of [0, targets)
  std::vector<std::uint32_t> batch_start;  ///< size batches()+1; 0-led
  std::size_t batches() const {
    return batch_start.empty() ? 0 : batch_start.size() - 1;
  }
  std::size_t batch_size(std::size_t b) const {
    return batch_start[b + 1] - batch_start[b];
  }

  /// The identity plan: contiguous `batch_size` spans in target order.
  static BatchPlan fixed(std::size_t targets, std::size_t batch_size);

  /// Checks the plan covers each of `targets` exactly once in batches of
  /// [1, max_batch]; throws std::invalid_argument on a malformed plan (a
  /// scheduler bug must fail the campaign loudly, not drop faults).
  void validate(std::size_t targets, std::size_t max_batch) const;
};

class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;
  /// Policy label for reports ("fixed" / "cone" / "adaptive").
  virtual std::string_view name() const = 0;
  virtual BatchPlan plan(std::span<const FaultId> targets,
                         const ScheduleContext& ctx) const = 0;
  /// Stable hash of everything (besides the targets and context) that
  /// plan() depends on — the result cache's plan_hash component, so two
  /// campaigns collide in the cache only if they would form the same
  /// batches. The default hashes name(); policies with construction-time
  /// state (packing mode, signature width, adaptive profiles) fold it in.
  virtual std::uint64_t fingerprint() const;
};

/// The default policy — the engine without a scheduler behaves exactly
/// like an engine holding one of these.
class FixedScheduler final : public BatchScheduler {
 public:
  std::string_view name() const override { return "fixed"; }
  BatchPlan plan(std::span<const FaultId> targets,
                 const ScheduleContext& ctx) const override;
};

/// How the cone policy turns signatures into batches.
enum class ConePacking : std::uint8_t {
  /// Greedy union-popcount clustering: seed each batch with the
  /// most-populous unclaimed signature group, then repeatedly add the
  /// group whose signature overlaps the batch's running union the most.
  /// Batches share fanout cones for real, so the event drain touches
  /// fewer levels per shard. The default.
  kGreedyUnion,
  /// Stable sort by raw 64-bit signature value (the pre-greedy
  /// behaviour, kept as the comparison baseline for benches).
  kRawSort,
};

/// Cone-aware grouping: batches faults whose effect-net cone signatures
/// overlap (ConePacking selects the clustering), so cone-mates share a
/// simulator pass — they activate the same region of the event-driven
/// kernel and tend to diverge on the same cycles. Construction runs the
/// static cone analysis once per universe; plan() is a pure function of
/// the target list.
class ConeScheduler final : public BatchScheduler {
 public:
  /// `topo`, if given, must be a PackedTopology over the universe's
  /// netlist (flows that already share one — SBST campaigns, scan
  /// runners — pass it to skip a rebuild); throws std::invalid_argument
  /// on a mismatch. Without one, a topology is built and discarded.
  /// `sig_bits` picks the Bloom signature width (64, 128 or 256 —
  /// ConeAnalysis::width_supported; anything else throws). The default 64
  /// keeps plans bit-identical to the pre-width policy; wider filters
  /// discriminate CPU-wide cones that saturate 64 buckets.
  explicit ConeScheduler(const FaultUniverse& universe,
                         std::shared_ptr<const PackedTopology> topo = nullptr,
                         ConePacking packing = ConePacking::kGreedyUnion,
                         int sig_bits = 64);
  std::string_view name() const override {
    return packing_ == ConePacking::kRawSort ? "cone-raw" : "cone";
  }
  BatchPlan plan(std::span<const FaultId> targets,
                 const ScheduleContext& ctx) const override;
  std::uint64_t fingerprint() const override;

  /// The grouping key of one fault (exposed for plan dumps and tests).
  ConeSig signature(FaultId f) const;
  /// Bulk signature lookup — the dump path reads the scheduler's own
  /// analysis through this instead of rebuilding one, so dump stats and
  /// the plan can never disagree on signatures.
  std::vector<ConeSig> signatures(std::span<const FaultId> targets) const;
  const ConeAnalysis& cones() const { return cones_; }
  ConePacking packing() const { return packing_; }
  int sig_bits() const { return cones_.sig_bits; }

 private:
  const FaultUniverse* universe_;
  ConeAnalysis cones_;
  ConePacking packing_ = ConePacking::kGreedyUnion;
};

/// Profile-guided shard splitting: starts from the fixed plan and halves
/// every batch whose profiled wall time exceeded split_factor x the
/// test's median shard time. Falls back to the fixed plan for a test the
/// profile does not cover with a matching shape (unknown name, different
/// target count or batch count) — a stale profile degrades to the
/// default policy, it never degrades correctness.
class AdaptiveScheduler final : public BatchScheduler {
 public:
  explicit AdaptiveScheduler(const CampaignResult& profile,
                             double split_factor = 2.0);
  /// No profile: every plan is the fixed plan (the CLI's cold-start path).
  AdaptiveScheduler() = default;

  std::string_view name() const override { return "adaptive"; }
  BatchPlan plan(std::span<const FaultId> targets,
                 const ScheduleContext& ctx) const override;
  std::uint64_t fingerprint() const override;

 private:
  struct TestProfile {
    std::size_t faults_targeted = 0;
    std::vector<double> shard_seconds;
  };
  std::map<std::string, TestProfile, std::less<>> profiles_;
  double split_factor_ = 2.0;
};

}  // namespace olfui
