// olfui/campaign: the grade-result cache + incremental re-grade.
//
// The paper's grading flow is rerun constantly in practice — same SBST
// programs, same netlist, tweaked options — and every fingerprint a
// repeat run needs to prove "this is the same work" already exists on the
// executor seam: the universe/netlist structure, each test's
// ReferenceTrace fingerprint (riding in CampaignTest::spec), the
// scheduler's plan fingerprint, and a canonical options hash. ResultCache
// keys the deterministic CampaignResult JSON payload on exactly those:
//
//   CacheKey{universe_fp, trace_fp, plan_hash, options_hash,
//            fault_model, lane_width}
//
// CampaignEngine::run consults the cache before planning anything: a full
// hit decodes the stored payload and returns it with ZERO shards executed
// (no worker spawn, no kernel eval — stats.cache = "hit"); a miss grades
// normally and populates the cache. Because the payload is the
// byte-comparable deterministic JSON (campaign_result_to_json without
// stats) and Json dump∘parse is byte-stable, a warm re-serialize is
// byte-identical to the cold run's document.
//
// Two tiers: an in-memory LRU (per-process, mutex-guarded) over an
// optional on-disk tier (--cache-dir; one JSON file per entry named by
// the key digest, written tmp-file + atomic rename, full canonical key
// verified on load). A corrupt or mismatched disk entry is counted, never
// trusted: the lookup falls back to a clean re-grade which overwrites it.
//
// Partial hit — incremental re-grade: seed_from_previous() takes a
// previous CampaignResult plus the set of changed nets, plans the
// affected fault set with wide ConeAnalysis signatures
// (changed_net_signature in sim/packed.hpp: a fault re-grades iff the
// diff cone intersects its propagation cone or reaches its own cell —
// Bloom collisions only widen the set), splices the previous detections
// for every unaffected fault, and re-grades only the rest through a
// target-masked engine. When the environment is closed-loop
// (env_feedback: stimulus depends on outputs, as in the SoC bus
// environment) a diff that reaches any output port forces a full
// re-grade — the change could re-enter anywhere, so nothing can be
// spliced soundly. The spliced + re-graded detection set is bit-identical
// to a full re-grade by construction (asserted in tests/cache_test.cpp
// against a genuinely perturbed netlist).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "campaign/campaign.hpp"
#include "sim/packed.hpp"

namespace olfui {

// ---------------------------------------------------------------------------
// Stable hashing primitives (FNV-1a, shared by every cache-key component).

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64(std::string_view text, std::uint64_t h = kFnv1aOffset);
/// Folds one 64-bit value (little-endian bytes) into a running hash.
std::uint64_t fnv1a64_word(std::uint64_t v, std::uint64_t h);

// ---------------------------------------------------------------------------
// Canonical campaign-options hash (the cache key's options component, also
// reported in RuntimeStats::options_hash).

/// Canonical serialization of every payload-affecting CampaignOptions
/// field as sorted "key=value" pairs — defaults included explicitly, so a
/// changed default changes the hash and field declaration order never
/// matters. Payload-NEUTRAL knobs (threads, executor backend,
/// shard_timeout, incremental_clocking, observability) are deliberately
/// absent: they never change the deterministic payload, so they must not
/// fragment the cache.
std::string campaign_options_canonical(const CampaignOptions& opts);
/// fnv1a64 of campaign_options_canonical().
std::uint64_t campaign_options_hash(const CampaignOptions& opts);

// ---------------------------------------------------------------------------
// Fingerprint helpers for the remaining key components.

/// Structural netlist + universe fingerprint: folds the universe size and
/// every cell's (type, output net, input nets) — any re-wiring, cell-type
/// change, or resize changes it.
std::uint64_t universe_fingerprint(const FaultUniverse& universe);

/// Initial fault-list state fingerprint: per-fault (detect, untestable
/// kind, online source). Campaign targets and the final detection state
/// both depend on where the list started, so the starting state is part
/// of the universe component of the key.
std::uint64_t fault_list_fingerprint(const FaultList& fl);

/// Folds every test's (name, good_cycles, spec) — the spec carries the
/// fsim options and the ReferenceTrace state fingerprint, so this is the
/// key's trace component. Returns 0 (not cacheable) if any test has a
/// null spec: without a wire description the grading kernel a
/// make_runner closure captures cannot be fingerprinted.
std::uint64_t campaign_tests_fingerprint(std::span<const CampaignTest> tests);

// ---------------------------------------------------------------------------
// The cache.

struct CacheKey {
  std::uint64_t universe_fp = 0;  ///< netlist structure + fault-list state
  std::uint64_t trace_fp = 0;     ///< tests incl. ReferenceTrace fingerprints
  std::uint64_t plan_hash = 0;    ///< BatchScheduler::fingerprint()
  std::uint64_t options_hash = 0; ///< campaign_options_hash()
  std::string fault_model = "stuck_at";
  int lane_width = 64;

  /// Self-describing canonical form ("v1|universe=..|trace=..|..") —
  /// stored verbatim inside each disk entry and verified on load, so a
  /// digest collision can never serve the wrong payload.
  std::string canonical() const;
  /// fnv1a64 of canonical(): the disk entry's file name.
  std::uint64_t digest() const;
  bool operator==(const CacheKey&) const = default;
};

struct ResultCacheStats {
  std::size_t hits = 0;       ///< lookups served (memory or disk)
  std::size_t misses = 0;     ///< lookups that found nothing usable
  std::size_t stores = 0;     ///< payloads written
  std::size_t evictions = 0;  ///< LRU entries dropped at capacity
  std::size_t disk_hits = 0;  ///< hits that came off the disk tier
  std::size_t corrupt = 0;    ///< disk entries rejected (parse/key/payload)
};

/// Thread-safe two-tier result cache. The value is the deterministic
/// CampaignResult payload (campaign_result_to_json_string without stats);
/// lookup() decodes it and any decode failure — however the entry got
/// damaged — counts as corrupt and falls back to a miss, so a damaged
/// cache can cost time but never correctness. Mirrors every stat into the
/// obs registry (cache.* counters) when metrics are enabled.
class ResultCache {
 public:
  /// `capacity` bounds the in-memory LRU tier (clamped to >= 1).
  /// `dir`, when nonempty, enables the disk tier: one
  /// "<digest16hex>.json" file per entry under it (the directory is
  /// created if missing, one level deep).
  explicit ResultCache(std::size_t capacity = 64, std::string dir = {});

  /// Full-hit lookup: decoded result, or nullopt on miss/corruption.
  std::optional<CampaignResult> lookup(const CacheKey& key);
  /// Encodes and stores (memory always; disk too when configured) —
  /// overwrites any existing entry, which is how a corrupt disk file
  /// heals after the fallback re-grade.
  void store(const CacheKey& key, const CampaignResult& result);

  ResultCacheStats stats() const;
  const std::string& dir() const { return dir_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

 private:
  using LruList = std::list<std::pair<std::string, std::string>>;

  void insert_locked(const std::string& canonical, std::string payload);
  std::optional<std::string> disk_load_locked(const CacheKey& key);
  void disk_store_locked(const CacheKey& key, const std::string& payload);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::string dir_;
  LruList lru_;  ///< front = most recent; (canonical key, payload)
  std::unordered_map<std::string_view, LruList::iterator> index_;
  ResultCacheStats stats_;
};

// ---------------------------------------------------------------------------
// Incremental re-grade (the partial-hit path).

struct IncrementalPlan {
  /// Per-fault: must be re-graded (its outcome may differ after the diff).
  BitVec regrade;
  /// The diff reached an output port under a closed-loop environment (or
  /// the caller asked for it): nothing can be spliced, re-grade all.
  bool full = false;
  /// changed_net_signature() of the diff, for diagnostics/dumps.
  ConeSig diff_sig;
};

/// Plans which faults a netlist diff can affect. `cones` must be built
/// over the (new) universe's topology; wider sig_bits means fewer Bloom
/// collisions and a tighter re-grade set. With `env_feedback` (the sound
/// default for closed-loop test environments, e.g. a SoC whose memory
/// model reads bus outputs), a diff whose cone reaches any output port
/// forces full = true.
IncrementalPlan plan_incremental_regrade(const FaultUniverse& universe,
                                         const ConeAnalysis& cones,
                                         std::span<const NetId> changed_nets,
                                         bool env_feedback = true);

/// The partial-hit path: splices `previous`'s detections for every fault
/// the diff cannot affect (marking them in `fl` without simulating), then
/// re-grades only the affected set through a target-masked engine over
/// `opts`. The combined detection state is bit-identical to a full
/// re-grade. Returns the masked run's result with full-universe detection
/// state/coverage/classes (those are derived from `fl` at run end) and
/// stats.cache = "partial" carrying cache_spliced / regraded_faults /
/// regrade_fraction. Throws std::invalid_argument on a universe-size or
/// fault-model mismatch with `previous`, or a topology for a different
/// netlist. `topo` may be null (one is built); signatures are computed at
/// the widest (256-bit) filter.
CampaignResult seed_from_previous(
    const FaultUniverse& universe, CampaignOptions opts, FaultList& fl,
    std::span<const CampaignTest> tests, const CampaignResult& previous,
    std::span<const NetId> changed_nets,
    std::shared_ptr<const PackedTopology> topo = nullptr,
    bool env_feedback = true, const CampaignProgress& progress = {});

}  // namespace olfui
