// olfui/core: the paper's primary contribution — the end-to-end on-line
// functionally untestable fault identification flow (§3, evaluated in §4):
//
//   1) Search for sources of untestability
//        - scan circuitry        (chain tracing, §3.1)
//        - debug control logic   (quiet-input screening + port list, §3.2.1)
//        - debug observation     (debug-only outputs, §3.2.2)
//        - addressing resources  (memory-map bit analysis, §3.3)
//   2) Circuit manipulation
//        - tie constant nets, unobserve floating outputs (MissionConfig)
//   3) Screen out on-line functionally untestable faults
//        a. direct pruning from the fault list (scan trace)
//        b. structural untestability checking (olfui_sta)
//
// The result reproduces the paper's Table I: per-source counts of on-line
// functionally untestable faults and the coverage gained by pruning them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/soc.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "sta/sta.hpp"

namespace olfui {

// FaultModel lives in fault/fault_list.hpp (shared with the campaign
// orchestrator); it is re-exported here for the analyzer's historical users.

struct AnalyzerOptions {
  FaultModel fault_model = FaultModel::kStuckAt;
  bool classify_structural_baseline = true;
  bool run_scan = true;
  bool run_debug_control = true;
  bool run_debug_observe = true;
  bool run_memmap = true;
};

struct AnalysisReport {
  std::size_t universe = 0;
  std::size_t structural_baseline = 0;  ///< untestable with full access
  std::size_t scan = 0;
  std::size_t debug_control = 0;
  std::size_t debug_observe = 0;
  std::size_t memmap = 0;
  double analysis_seconds = 0.0;  ///< structural analysis CPU time (§4: <1s)

  std::size_t total_online() const {
    return scan + debug_control + debug_observe + memmap;
  }
  double online_pct() const {
    return universe == 0 ? 0.0
                         : 100.0 * static_cast<double>(total_online()) /
                               static_cast<double>(universe);
  }
  /// Formats the paper's Table I.
  std::string table1() const;
};

class OnlineUntestabilityAnalyzer {
 public:
  /// Both references must outlive the analyzer.
  OnlineUntestabilityAnalyzer(const Soc& soc, const FaultUniverse& universe);

  /// Runs the full flow, marking faults in `fl`. Each fault keeps the
  /// source of the *first* pass that proves it untestable, so the Table-I
  /// rows are disjoint (the flow order matches the paper: scan -> debug
  /// control -> debug observation -> memory map).
  AnalysisReport run(FaultList& fl, const AnalyzerOptions& opts = {});

  /// The accumulated mission configuration after run() (for cross-checks
  /// with ATPG or fault simulation).
  const MissionConfig& mission_config() const { return accumulated_; }

 private:
  const Soc* soc_;
  const FaultUniverse* universe_;
  StructuralAnalyzer sta_;
  MissionConfig accumulated_;
};

}  // namespace olfui
