#include "core/analyzer.hpp"

#include <chrono>

#include "debug/debug.hpp"
#include "memmap/memmap.hpp"
#include "scan/scan.hpp"
#include "util/strings.hpp"

namespace olfui {

std::string AnalysisReport::table1() const {
  const auto pct = [&](std::size_t n) {
    return universe == 0 ? 0.0
                         : 100.0 * static_cast<double>(n) /
                               static_cast<double>(universe);
  };
  std::string out;
  out += "On-line functionally untestable faults\n";
  out += format("  %-10s %10s %7s\n", "", "[#]", "[%]");
  out += format("  %-10s %10s %6.1f%%\n", "Original", "0", 0.0);
  out += format("  %-10s %10s %6.1f%%\n", "Scan", with_commas(scan).c_str(),
                pct(scan));
  out += format("  %-10s %6s+%-5s %6.1f%%\n", "Debug",
                with_commas(debug_control).c_str(),
                with_commas(debug_observe).c_str(),
                pct(debug_control + debug_observe));
  out += format("  %-10s %10s %6.1f%%\n", "Memory", with_commas(memmap).c_str(),
                pct(memmap));
  out += format("  %-10s %10s %6.1f%%\n", "TOTAL",
                with_commas(total_online()).c_str(), online_pct());
  out += format("  (fault universe: %s; pre-existing structural: %s; "
                "analysis time: %.3f s)\n",
                with_commas(universe).c_str(),
                with_commas(structural_baseline).c_str(), analysis_seconds);
  return out;
}

OnlineUntestabilityAnalyzer::OnlineUntestabilityAnalyzer(
    const Soc& soc, const FaultUniverse& universe)
    : soc_(&soc), universe_(&universe), sta_(soc.netlist, universe) {}

AnalysisReport OnlineUntestabilityAnalyzer::run(FaultList& fl,
                                                const AnalyzerOptions& opts) {
  using Clock = std::chrono::steady_clock;
  AnalysisReport report;
  report.universe = universe_->size();
  accumulated_ = MissionConfig{};

  const auto t0 = Clock::now();
  const auto classify = [&](const StaResult& r, FaultList& list,
                            OnlineSource src) {
    return opts.fault_model == FaultModel::kStuckAt
               ? sta_.classify_faults(r, list, src)
               : sta_.classify_transition_faults(r, list, src);
  };

  // Baseline: structurally untestable faults of the original, fully
  // accessible circuit (Fig. 1 innermost set). These are not "on-line"
  // faults — the paper's Table I reports 0 for the original circuit.
  if (opts.classify_structural_baseline) {
    const StaResult base = sta_.analyze(MissionConfig{});
    report.structural_baseline = classify(base, fl, OnlineSource::kStructural);
  }

  // §3.1 scan circuitry: trace the chains, prune directly (for stuck-at,
  // the paper's "ad-hoc tool"); the transition model goes through the
  // structural engine, which subsumes the Fig.-2 rules.
  if (opts.run_scan && soc_->config.with_scan) {
    const ScanChains traced = trace_scan(soc_->netlist);
    accumulated_.merge(scan_mission_config(soc_->netlist, traced));
    if (opts.fault_model == FaultModel::kStuckAt) {
      report.scan = prune_scan_faults(traced, *universe_, fl);
    } else {
      const StaResult r = sta_.analyze(accumulated_);
      report.scan = classify(r, fl, OnlineSource::kScan);
    }
  }

  // §3.2.1 unused debug control logic: tie the debug inputs, re-run the
  // structural engine, attribute newly proven faults to this source.
  if (opts.run_debug_control && soc_->config.with_debug) {
    accumulated_.merge(debug_control_config(soc_->debug));
    const StaResult r = sta_.analyze(accumulated_);
    report.debug_control = classify(r, fl, OnlineSource::kDebugControl);
  }

  // §3.2.2 unused debug observation logic: float the debug outputs.
  if (opts.run_debug_observe && soc_->config.with_debug) {
    accumulated_.merge(debug_observe_config(soc_->debug));
    const StaResult r = sta_.analyze(accumulated_);
    report.debug_observe = classify(r, fl, OnlineSource::kDebugObserve);
  }

  // §3.3 addressing resources under the mission memory map.
  if (opts.run_memmap) {
    accumulated_.merge(memmap_config(soc_->netlist, soc_->map, 32));
    const StaResult r = sta_.analyze(accumulated_);
    report.memmap = classify(r, fl, OnlineSource::kMemoryMap);
  }

  report.analysis_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

}  // namespace olfui
