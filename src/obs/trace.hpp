// olfui/obs: thread-safe span tracer emitting Chrome/Perfetto trace_event
// JSON.
//
// The campaign pipeline is instrumented with spans (plan, execute, merge,
// per-shard grading, worker-side state rebuilds) that render as `ph:"X"`
// complete events in Perfetto or chrome://tracing. The tracer is a
// process-wide singleton that is OFF by default: every instrumentation
// site first checks `enabled()` (one relaxed atomic load), so a build
// with tracing compiled in but disabled pays a branch and nothing else.
// Telemetry is strictly side-band — nothing recorded here may ever feed
// back into fault grading, which stays bit-identical with tracing on or
// off (asserted in tests and CI).
//
// pid/tid mapping: pid is the operating-system process id (the
// coordinator and each subprocess worker get their own lane group in the
// viewer), tid is a small per-thread lane id — worker pools pin lane ==
// participant index via set_thread_lane() so a span's row matches the
// worker that ran it. Spans recorded in subprocess workers are shipped
// back over the wire protocol and merged with merge_foreign(), keeping
// the child's pid and shifting timestamps by the clock offset measured at
// the hello handshake, so one trace file shows the whole fleet on a
// common timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "campaign/json.hpp"

namespace olfui::obs {

/// One recorded event. ts/dur are microseconds on the owning tracer's
/// monotonic timeline (steady_clock since tracer construction).
struct TraceEvent {
  std::string name;
  std::string cat;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::int64_t pid = 0;  ///< 0 = "this process" (filled at export)
  std::int64_t tid = 0;
  /// Optional args rendered under the event in the viewer.
  std::vector<std::pair<std::string, Json>> args;
};

class Tracer {
 public:
  Tracer();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction (steady clock). Valid
  /// whether or not tracing is enabled — the subprocess handshake uses it
  /// to measure coordinator/worker clock offsets.
  std::int64_t now_us() const;

  /// Records a complete event ending now. tid defaults to the calling
  /// thread's lane (see set_thread_lane). No-op when disabled.
  void complete(std::string name, std::string cat, std::int64_t ts_us,
                std::vector<std::pair<std::string, Json>> args = {});
  /// Records a fully specified event (explicit tid/pid/dur) — the merge
  /// path for per-shard spans timed outside the tracer. No-op when
  /// disabled.
  void record(TraceEvent ev);

  /// Merges events recorded by another process: timestamps are shifted by
  /// `clock_offset_us` (coordinator now_us minus worker now_us at the
  /// same instant) and the given pid is stamped on every event, giving
  /// the worker its own lane group on the coordinator timeline.
  void merge_foreign(std::vector<TraceEvent> events, std::int64_t pid,
                     std::int64_t clock_offset_us);

  /// Labels a pid lane ("coordinator", "worker 3") via a process_name
  /// metadata event in the export.
  void set_process_label(std::int64_t pid, std::string label);

  /// RAII span: records one complete event from construction to
  /// destruction. Inert (no clock read, no allocation) when the tracer is
  /// disabled at construction.
  class Span {
   public:
    Span() = default;
    Span(Tracer* t, const char* name, const char* cat)
        : t_(t), name_(name), cat_(cat), ts_us_(t ? t->now_us() : 0) {}
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept {
      end();
      t_ = o.t_; name_ = o.name_; cat_ = o.cat_; ts_us_ = o.ts_us_;
      args_ = std::move(o.args_);
      o.t_ = nullptr;
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Attaches an arg shown under the event in the viewer.
    void arg(std::string key, Json value) {
      if (t_) args_.emplace_back(std::move(key), std::move(value));
    }
    /// Closes the span early (idempotent).
    void end() {
      if (t_) t_->complete(name_, cat_, ts_us_, std::move(args_));
      t_ = nullptr;
    }

   private:
    Tracer* t_ = nullptr;
    const char* name_ = "";
    const char* cat_ = "";
    std::int64_t ts_us_ = 0;
    std::vector<std::pair<std::string, Json>> args_;
  };

  /// Opens a span, inert when disabled (the only cost is this branch).
  Span span(const char* name, const char* cat) {
    return enabled() ? Span(this, name, cat) : Span();
  }

  /// Moves all recorded events out (the subprocess worker ships deltas
  /// per request). Process labels are kept.
  std::vector<TraceEvent> drain();
  /// Drops all recorded events and labels.
  void clear();
  std::size_t event_count() const;

  /// Full Chrome trace document: {"traceEvents":[...]} with process_name
  /// metadata first, then events in recorded order. pid 0 is replaced by
  /// this process's id.
  Json to_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::int64_t, std::string>> labels_;
};

/// The process-wide tracer every instrumentation site uses.
Tracer& tracer();

/// Serialization of TraceEvent lists for the worker telemetry wire field
/// (ts/dur/tid/name/cat/args; pid is implied by the sending process).
Json trace_events_to_json(const std::vector<TraceEvent>& events);
std::vector<TraceEvent> trace_events_from_json(const Json& arr);

/// Sets the calling thread's tid lane. Worker pools pin lane ==
/// participant index so trace rows match scheduling decisions; unpinned
/// threads get distinct lanes assigned on first use (main thread is lane
/// 0 in practice — it touches the tracer first).
void set_thread_lane(int lane);
int thread_lane();

}  // namespace olfui::obs
