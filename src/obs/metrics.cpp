#include "obs/metrics.hpp"

#include <algorithm>

namespace olfui::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, static_cast<double>(c->value()));
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    Json entry = Json::object();
    entry.set("value", static_cast<double>(g->value()));
    entry.set("high_water", static_cast<double>(g->high_water()));
    gauges.set(name, std::move(entry));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    Json bounds = Json::array();
    for (double b : h->bounds()) bounds.push_back(b);
    Json buckets = Json::array();
    for (std::size_t i = 0; i <= h->bounds().size(); ++i)
      buckets.push_back(static_cast<double>(h->bucket_count(i)));
    entry.set("bounds", std::move(bounds));
    entry.set("buckets", std::move(buckets));
    entry.set("count", static_cast<double>(h->count()));
    entry.set("sum", h->sum());
    histograms.set(name, std::move(entry));
  }
  Json doc = Json::object();
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(histograms));
  return doc;
}

Json MetricsRegistry::counters_to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, static_cast<double>(c->value()));
  return counters;
}

void MetricsRegistry::merge_counters(const Json& counters) {
  for (std::size_t i = 0; i < counters.size(); ++i)
    counter(counters.key(i)).add(counters.value(i).as_size());
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

}  // namespace olfui::obs
