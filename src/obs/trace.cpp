#include "obs/trace.hpp"

#include <unistd.h>

namespace olfui::obs {

namespace {

std::atomic<int> g_next_lane{0};
thread_local int t_lane = -1;

}  // namespace

void set_thread_lane(int lane) { t_lane = lane; }

int thread_lane() {
  if (t_lane < 0) t_lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return t_lane;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::complete(std::string name, std::string cat, std::int64_t ts_us,
                      std::vector<std::pair<std::string, Json>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ts_us = ts_us;
  ev.dur_us = now_us() - ts_us;
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.tid = thread_lane();
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::merge_foreign(std::vector<TraceEvent> events, std::int64_t pid,
                           std::int64_t clock_offset_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceEvent& ev : events) {
    ev.ts_us += clock_offset_us;
    if (ev.ts_us < 0) ev.ts_us = 0;
    ev.pid = pid;
    events_.push_back(std::move(ev));
  }
}

void Tracer::set_process_label(std::int64_t pid, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [p, l] : labels_) {
    if (p == pid) { l = std::move(label); return; }
  }
  labels_.emplace_back(pid, std::move(label));
}

std::vector<TraceEvent> Tracer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  labels_.clear();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Json Tracer::to_json() const {
  const std::int64_t self = static_cast<std::int64_t>(::getpid());
  Json arr = Json::array();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pid, label] : labels_) {
    Json md = Json::object();
    md.set("name", "process_name");
    md.set("ph", "M");
    md.set("pid", static_cast<double>(pid == 0 ? self : pid));
    md.set("tid", 0);
    Json args = Json::object();
    args.set("name", label);
    md.set("args", std::move(args));
    arr.push_back(std::move(md));
  }
  for (const TraceEvent& ev : events_) {
    Json e = Json::object();
    e.set("name", ev.name);
    e.set("cat", ev.cat.empty() ? "olfui" : ev.cat);
    e.set("ph", "X");
    e.set("ts", static_cast<double>(ev.ts_us));
    e.set("dur", static_cast<double>(ev.dur_us));
    e.set("pid", static_cast<double>(ev.pid == 0 ? self : ev.pid));
    e.set("tid", static_cast<double>(ev.tid));
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    arr.push_back(std::move(e));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(arr));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

Json trace_events_to_json(const std::vector<TraceEvent>& events) {
  Json arr = Json::array();
  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e.set("name", ev.name);
    e.set("cat", ev.cat);
    e.set("ts", static_cast<double>(ev.ts_us));
    e.set("dur", static_cast<double>(ev.dur_us));
    e.set("tid", static_cast<double>(ev.tid));
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    arr.push_back(std::move(e));
  }
  return arr;
}

std::vector<TraceEvent> trace_events_from_json(const Json& arr) {
  std::vector<TraceEvent> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const Json& e = arr.at(i);
    TraceEvent ev;
    ev.name = e.at("name").as_string();
    ev.cat = e.at("cat").as_string();
    ev.ts_us = static_cast<std::int64_t>(e.at("ts").as_number());
    ev.dur_us = static_cast<std::int64_t>(e.at("dur").as_number());
    ev.tid = static_cast<std::int64_t>(e.at("tid").as_number());
    if (e.contains("args")) {
      const Json& args = e.at("args");
      for (std::size_t k = 0; k < args.size(); ++k)
        ev.args.emplace_back(args.key(k), args.value(k));
    }
    out.push_back(std::move(ev));
  }
  return out;
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

}  // namespace olfui::obs
