// olfui/obs: process-wide metrics registry — counters, gauges and
// fixed-bucket histograms with deterministic-ordered JSON export.
//
// Like the tracer (obs/trace.hpp) the registry is a singleton that is OFF
// by default; instrumentation sites guard on `enabled()` (one relaxed
// atomic load) so disabled builds pay a branch and nothing else. All
// updates are lock-free atomics — safe from any worker thread — and
// strictly side-band: metric values never feed back into grading, whose
// payload stays bit-identical with metrics on or off.
//
// Registration returns stable references: instruments are node-allocated
// and never move, so a hot loop may look its counter up once and cache
// the reference. Export is sorted by name (std::map), so two runs that
// touch the same instruments dump byte-comparable documents apart from
// the values themselves.
//
// Metric names use dotted "<subsystem>.<what>" (see the README
// catalogue): e.g. campaign.shard_steals, kernel.events_drained,
// fsim.trace_cache_hits.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/json.hpp"

namespace olfui::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, active workers). Also
/// tracks the high-water mark seen across set() calls.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw &&
           !high_water_.compare_exchange_weak(hw, v, std::memory_order_relaxed))
      ;
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Fixed-bucket histogram: observe(v) lands in the first bucket whose
/// upper bound is >= v, or the implicit +inf overflow bucket. Bounds are
/// fixed at registration; re-registering the same name returns the
/// existing instrument regardless of the bounds passed.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;  ///< sorted upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 (+inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Finds or creates; the returned reference stays valid for the
  /// registry's lifetime (instruments never move or vanish).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — every section
  /// sorted by metric name, so exports are deterministic documents.
  Json to_json() const;
  /// Counters only, as a flat name → value object (the worker telemetry
  /// wire field).
  Json counters_to_json() const;
  /// Adds each member of a counters_to_json()-shaped object into this
  /// registry (coordinator merging worker telemetry).
  void merge_counters(const Json& counters);

  /// Zeroes all values but keeps registrations (cached references stay
  /// valid). Workers reset between requests so each reply carries deltas.
  void reset_values();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // registration/export only; updates are atomic
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every instrumentation site uses.
MetricsRegistry& metrics();

}  // namespace olfui::obs
