// olfui/memmap: the §3.3 addressing-resources analysis.
//
// A System-on-Chip maps far less memory than its address bus could reach:
// the case study connects a Flash at 0x0007_8000-0x0007_FFFF and a RAM at
// 0x4000_0000-0x4001_FFFF to a 32-bit bus. An address bit that never
// assumes both logic values over the union of mapped ranges makes every
// register bit that stores addresses — PC, branch-target-buffer entries,
// bus address registers — a constant in mission operation, and partially
// starves the address-manipulation adders. The pass:
//   1. computes the varying/constant address bits from the memory map;
//   2. finds address registers by generator tag ("addr:<class>:<bit>");
//   3. ties both the D and Q nets of the constant bits (the paper ties
//      "input and output of those flip flops", Figs. 5/6) so the
//      structural engine can propagate constants into the downstream
//      address-manipulation cones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace olfui {

struct MemRange {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t size = 0;  ///< bytes; range is [base, base+size)

  std::uint64_t last() const { return base + size - 1; }
};

struct AddressBitInfo {
  /// varying[b]: bit b legally assumes both values over the map.
  std::vector<bool> varying;
  /// For constant bits, the value they always carry.
  std::vector<bool> value;

  std::size_t num_constant() const;
  std::string to_string() const;  ///< e.g. "varying: [18:0],30  constant0: ..."
};

class MemoryMap {
 public:
  void add_range(std::string name, std::uint64_t base, std::uint64_t size) {
    ranges_.push_back({std::move(name), base, size});
  }
  const std::vector<MemRange>& ranges() const { return ranges_; }

  /// True if some legal address has bit b = v.
  bool bit_can_be(int bit, bool v) const;
  /// Per-bit variability over the union of all ranges.
  AddressBitInfo analyze(int width) const;
  /// True if addr falls inside a mapped range.
  bool contains(std::uint64_t addr) const;

 private:
  std::vector<MemRange> ranges_;
};

/// Address registers discovered by tag. Tag format: "addr:<class>:<bit>".
struct AddrRegBit {
  CellId flop = kInvalidId;
  std::string cls;
  int bit = 0;
};

std::vector<AddrRegBit> find_address_registers(const Netlist& nl);

/// Builds the §3.3 mission configuration: for every tagged address-register
/// bit whose address bit is constant under `map`, ties the flop's D and Q
/// nets to the constant value. `classes` restricts which tag classes are
/// tied (empty = all).
MissionConfig memmap_config(const Netlist& nl, const MemoryMap& map, int width,
                            const std::vector<std::string>& classes = {});

}  // namespace olfui
