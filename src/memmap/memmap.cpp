#include "memmap/memmap.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace olfui {

std::size_t AddressBitInfo::num_constant() const {
  std::size_t n = 0;
  for (bool v : varying)
    if (!v) ++n;
  return n;
}

std::string AddressBitInfo::to_string() const {
  std::string out = "varying:";
  for (std::size_t b = 0; b < varying.size(); ++b)
    if (varying[b]) out += format(" %zu", b);
  out += "  constant:";
  for (std::size_t b = 0; b < varying.size(); ++b)
    if (!varying[b]) out += format(" %zu=%d", b, value[b] ? 1 : 0);
  return out;
}

bool MemoryMap::bit_can_be(int bit, bool v) const {
  for (const MemRange& r : ranges_) {
    if (r.size == 0) continue;
    // Within [base, last]: bit can be 0/1 iff either the prefix above `bit`
    // changes across the range (then all low patterns occur) or the fixed
    // bit value matches.
    const std::uint64_t lo = r.base, hi = r.last();
    if ((lo >> (bit + 1)) != (hi >> (bit + 1))) return true;  // bit wraps
    const bool fixed = (lo >> bit) & 1;
    if ((lo >> bit) == (hi >> bit)) {
      if (fixed == v) return true;
    } else {
      return true;  // bit itself transitions within the range
    }
  }
  return false;
}

AddressBitInfo MemoryMap::analyze(int width) const {
  AddressBitInfo info;
  info.varying.resize(static_cast<std::size_t>(width));
  info.value.resize(static_cast<std::size_t>(width));
  for (int b = 0; b < width; ++b) {
    const bool can0 = bit_can_be(b, false);
    const bool can1 = bit_can_be(b, true);
    info.varying[static_cast<std::size_t>(b)] = can0 && can1;
    // For constant bits record the single achievable value; an unmapped
    // bus (no ranges) defaults to 0 — the reset value of address registers.
    info.value[static_cast<std::size_t>(b)] = can1 && !can0;
  }
  return info;
}

bool MemoryMap::contains(std::uint64_t addr) const {
  for (const MemRange& r : ranges_)
    if (r.size != 0 && addr >= r.base && addr <= r.last()) return true;
  return false;
}

std::vector<AddrRegBit> find_address_registers(const Netlist& nl) {
  std::vector<AddrRegBit> out;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (!is_sequential(c.type) || !starts_with(c.tag, "addr:")) continue;
    const auto parts = split(c.tag, ":");
    if (parts.size() != 3) continue;
    const auto bit = parse_uint(parts[2]);
    if (!bit) continue;
    out.push_back({id, std::string(parts[1]), static_cast<int>(*bit)});
  }
  return out;
}

MissionConfig memmap_config(const Netlist& nl, const MemoryMap& map, int width,
                            const std::vector<std::string>& classes) {
  const AddressBitInfo info = map.analyze(width);
  MissionConfig cfg;
  for (const AddrRegBit& reg : find_address_registers(nl)) {
    if (reg.bit >= width || info.varying[static_cast<std::size_t>(reg.bit)])
      continue;
    if (!classes.empty() &&
        std::find(classes.begin(), classes.end(), reg.cls) == classes.end())
      continue;
    const bool v = info.value[static_cast<std::size_t>(reg.bit)];
    const Cell& c = nl.cell(reg.flop);
    // Paper §3.3 step 4a: tie "input and output of those flip flops
    // showing a constant value in any register involved in address
    // manipulation". Tying Q propagates the constant into the address
    // manipulation cones (adders, comparators) per Fig. 6.
    cfg.tie(c.ins[kDffD], v);
    cfg.tie(c.out, v);
  }
  return cfg;
}

}  // namespace olfui
