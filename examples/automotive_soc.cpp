// automotive_soc — the ISO 26262 scenario that motivates the paper.
//
// An airbag-class ECU must demonstrate high stuck-at coverage for its
// periodic in-field self-test. This example runs the SBST suite through
// the fault simulator (observing only the system bus, as on the real ECU),
// then shows how identifying on-line functionally untestable faults
// changes the reported coverage — the difference between failing and
// meeting a safety target.
//
//   $ ./automotive_soc [--quick]
#include <cstdio>
#include <cstring>

#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"

int main(int argc, char** argv) {
  using namespace olfui;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  SocConfig cfg;
  if (quick) {
    cfg.cpu.with_multiplier = false;  // smaller netlist, same flow
    cfg.cpu.btb_entries = 2;
  }
  auto soc = build_soc(cfg);
  std::printf("ECU processor core: %zu cells, %zu flops\n",
              soc->netlist.stats().cells, soc->netlist.stats().flops);

  const FaultUniverse universe(soc->netlist);
  FaultList faults(universe);

  // Step 1: grade the self-test library by fault simulation. Detection is
  // judged on the system bus only — exactly the visibility the ECU's
  // checker has in the field.
  auto suite = build_sbst_suite(cfg);
  if (quick) suite.erase(suite.begin() + 3, suite.end());
  std::printf("grading %zu self-test programs (system-bus observability)...\n",
              suite.size());
  const SbstCampaignResult campaign = run_sbst_campaign(
      *soc, suite, faults, [](const std::string& name, std::size_t done,
                              std::size_t total) {
        if (done == total)
          std::printf("  %-12s graded (%zu faults targeted)\n", name.c_str(),
                      total);
      });
  std::printf("total detections: %zu\n\n", campaign.total_detected);

  const double before = faults.raw_coverage();

  // Step 2: identify on-line functionally untestable faults and prune them
  // from the denominator (paper §3/§4).
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  const AnalysisReport report = analyzer.run(faults);
  std::printf("%s\n", report.table1().c_str());

  const double after = faults.pruned_coverage();
  std::printf("ISO 26262 coverage accounting:\n");
  std::printf("  raw stuck-at coverage:            %6.2f%%\n", 100.0 * before);
  std::printf("  after untestable-fault pruning:   %6.2f%%\n", 100.0 * after);
  std::printf("  gain:                             %+6.2f points\n",
              100.0 * (after - before));
  std::printf("\nwithout pruning, the suite looks %.1f points worse than it "
              "is — the difference the paper reports as ~13%%.\n",
              100.0 * (after - before));
  return 0;
}
