// olfui_cli — command-line front end for third-party netlists.
//
//   olfui_cli <netlist.v> [options]
//     --tie NET=0|1        mission-constant net (repeatable)
//     --unobserve PORT     output port unread in mission mode (repeatable)
//     --memmap BASE:SIZE   mapped address range (repeatable; enables the
//                          §3.3 pass over "addr:<class>:<bit>"-tagged flops)
//     --model sa|tdf       fault model (default sa)
//     --csv FILE           write the untestable-fault dossier as CSV
//     --json FILE          write the summary as JSON
//     --sweep              run the constant-sweep cleanup first
//
// Example:
//   olfui_cli periph.v --tie test_mode=0 --unobserve dbg_tap --csv out.csv
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/report.hpp"
#include "memmap/memmap.hpp"
#include "netlist/sweep.hpp"
#include "sta/sta.hpp"
#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace {

using namespace olfui;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <netlist.v> [--tie NET=0|1] [--unobserve PORT] "
               "[--memmap BASE:SIZE] [--model sa|tdf] [--csv FILE] "
               "[--json FILE] [--sweep]\n",
               argv0);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  std::string input = argv[1];
  std::vector<std::pair<std::string, bool>> ties;
  std::vector<std::string> unobserved;
  MemoryMap map;
  bool use_memmap = false, sweep = false, transition = false;
  std::string csv_path, json_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--tie") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq + 1 >= spec.size()) usage(argv[0]);
      ties.emplace_back(spec.substr(0, eq), spec[eq + 1] == '1');
    } else if (arg == "--unobserve") {
      unobserved.push_back(next());
    } else if (arg == "--memmap") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      const auto base = parse_uint(spec.substr(0, colon));
      const auto size = parse_uint(spec.substr(colon + 1));
      if (colon == std::string::npos || !base || !size) usage(argv[0]);
      map.add_range("range" + std::to_string(map.ranges().size()), *base, *size);
      use_memmap = true;
    } else if (arg == "--model") {
      transition = next() == "tdf";
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      usage(argv[0]);
    }
  }

  Netlist nl = [&] {
    try {
      return parse_verilog(read_file(input));
    } catch (const VerilogError& e) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(), e.what());
      std::exit(1);
    }
  }();
  if (sweep) {
    SweepStats st;
    nl = constant_sweep(nl, &st);
    std::printf("sweep: %zu -> %zu cells\n", st.cells_in, st.cells_out);
  }
  std::printf("%s: %zu cells, %zu nets, %zu flops\n", nl.name().c_str(),
              nl.stats().cells, nl.stats().nets, nl.stats().flops);

  MissionConfig mission;
  for (const auto& [name, value] : ties) {
    const NetId n = nl.find_net(name);
    if (n == kInvalidId) {
      std::fprintf(stderr, "error: no net '%s'\n", name.c_str());
      return 1;
    }
    mission.tie(n, value);
  }
  for (const std::string& name : unobserved) {
    const CellId c = nl.find_output(name);
    if (c == kInvalidId) {
      std::fprintf(stderr, "error: no output port '%s'\n", name.c_str());
      return 1;
    }
    mission.unobserve(c);
  }
  if (use_memmap) mission.merge(memmap_config(nl, map, 32));

  const FaultUniverse universe(nl);
  const StructuralAnalyzer sta(nl, universe);
  FaultList faults(universe);
  const StaResult result = sta.analyze(mission);
  const std::size_t pruned =
      transition
          ? sta.classify_transition_faults(result, faults, OnlineSource::kScan)
          : sta.classify_faults(result, faults, OnlineSource::kScan);

  std::printf("fault model: %s\n", transition ? "transition-delay" : "stuck-at");
  std::printf("on-line functionally untestable: %zu / %zu (%.1f%%)\n", pruned,
              universe.size(),
              universe.size()
                  ? 100.0 * static_cast<double>(pruned) /
                        static_cast<double>(universe.size())
                  : 0.0);
  std::printf("\n%s", module_breakdown_table(faults).c_str());

  if (!csv_path.empty()) write_file(csv_path, to_csv(faults, true));
  if (!json_path.empty()) write_file(json_path, to_json_summary(faults));
  return 0;
}
