// olfui_cli — command-line front end for third-party netlists, plus the
// coordinator/worker pair for distributed SBST campaigns.
//
//   olfui_cli --sbst [options]
//     Grades the built-in MiniRISC32 SBST suite against the stuck-at (or
//     TDF) universe through the campaign orchestrator, on a pluggable
//     shard executor:
//       --executor inproc|subprocess   shard backend (default inproc)
//       --workers N          subprocess worker processes (default 2)
//       --shard-timeout S    per-shard liveness deadline in seconds for
//                            the subprocess fleet (0 = derive from
//                            profiled shard times with a generous floor)
//       --max-respawns N     fleet-wide respawn budget for crashed
//                            workers (default 8)
//       --min-workers N      degrade to in-process grading when fewer
//                            workers remain live or respawnable
//                            (default 1)
//       --chaos SPEC         forward a deterministic fault-injection spec
//                            (<seed>:crash|stall|trunc[@N][:all]) to the
//                            spawned workers — the recovery-path smoke
//       --programs N         grade only the first N suite programs
//       --limit N            grade only the first N eligible faults per
//                            test (the CI smoke slice; 0 = all)
//       --threads N          in-process worker threads (0 = all cores)
//       --lanes W            packed kernel width: 64 (default), 128, or
//                            256 — builds without vector-extension
//                            support fall back to 64. Pure throughput
//                            knob: the graded JSON is identical at every
//                            width
//       --clocking M         full | incremental (default incremental) —
//                            the packed kernel's clock() path; full is the
//                            every-flop two-pass latch oracle. Pure
//                            work-skipping knob: the graded JSON is
//                            identical in both modes, and the choice rides
//                            each test's wire spec so subprocess fleets
//                            grade with the coordinator's mode
//       --schedule P         default | cone | adaptive
//       --model sa|tdf       fault model (default sa)
//       --cache-dir DIR      persistent grade-result cache (campaign/
//                            cache.hpp): a repeat run with identical
//                            netlist, traces, plan, and options decodes
//                            the stored deterministic payload and
//                            executes ZERO shards; any input change
//                            misses and re-grades. One JSON file per
//                            entry under DIR, written atomically; a
//                            corrupt file is detected and re-graded
//                            around. Prints a "cache: ..." summary line
//       --seed-from FILE     incremental re-grade: FILE is a previous
//                            run's --json output; faults whose cones the
//                            --diff-nets change cannot reach inherit
//                            their cached detections, only the rest are
//                            re-graded (bit-identical to a full re-grade)
//       --diff-nets A,B,..   changed net names for --seed-from (empty =
//                            nothing changed: everything splices)
//       --json FILE          full CampaignResult (runtime stats included)
//       --json-no-stats FILE deterministic payload only — byte-identical
//                            across executors/threads/workers, the file
//                            the distributed smoke compares
//       --trace FILE         Chrome/Perfetto trace_event JSON of the whole
//                            campaign — coordinator spans plus, under
//                            --executor subprocess, every worker's spans
//                            on its own pid lane (side-band: the grading
//                            payload is byte-identical with or without it)
//       --metrics FILE       deterministic-ordered counters/gauges/
//                            histograms JSON (obs/metrics.hpp catalogue)
//       --progress           stderr heartbeat per shard batch: shards
//                            done/estimated, faults graded, faults/s, ETA
//
//   olfui_cli --worker [--chaos SPEC]
//     Runs one campaign worker speaking the JSON line protocol
//     (campaign/executor.hpp) on stdin/stdout; spawned by
//     --executor subprocess, rebuilds grading state from each request's
//     CampaignTest::spec. Not meant for interactive use. --chaos (or the
//     OLFUI_CHAOS environment variable) injects deterministic failures
//     for recovery testing.
//
//   olfui_cli <netlist.v> [options]
//     --tie NET=0|1        mission-constant net (repeatable)
//     --unobserve PORT     output port unread in mission mode (repeatable)
//     --memmap BASE:SIZE   mapped address range (repeatable; enables the
//                          §3.3 pass over "addr:<class>:<bit>"-tagged flops)
//     --model sa|tdf       fault model (default sa)
//     --csv FILE           write the untestable-fault dossier as CSV
//     --json FILE          write the summary as JSON
//     --sweep              run the constant-sweep cleanup first
//     --campaign           grade a manufacturing scan-test campaign (chain
//                          test + random + PODEM patterns) through the
//                          parallel campaign orchestrator; needs scan
//                          chains ("scan_en"/"scan_in*"/"scan_out*" ports)
//     --threads N          orchestrator worker threads (0 = all cores)
//     --schedule P         batch-formation policy for --campaign and
//                          --dump-schedule: default | cone | adaptive
//                          (adaptive has no profile here, so it plans
//                          like default until fed a previous run)
//     --dump-schedule FILE write the computed batch plan over the
//                          testable universe (shard sizes, cone-overlap
//                          stats) as JSON for offline inspection
//     --trace FILE         campaign span trace (see --sbst above)
//     --metrics FILE       campaign metrics export (see --sbst above)
//
// Example:
//   olfui_cli periph.v --tie test_mode=0 --unobserve dbg_tap --csv out.csv
//   olfui_cli core_scan.v --campaign --threads 8 --json coverage.json
//   olfui_cli core_scan.v --schedule cone --dump-schedule plan.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "fault/report.hpp"
#include "memmap/memmap.hpp"
#include "netlist/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sbst/sbst.hpp"
#include "scan/scan_atpg.hpp"
#include "sta/sta.hpp"
#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace {

using namespace olfui;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <netlist.v> [--tie NET=0|1] [--unobserve PORT] "
               "[--memmap BASE:SIZE] [--model sa|tdf] [--csv FILE] "
               "[--json FILE] [--sweep] [--campaign] [--threads N] "
               "[--schedule default|cone|adaptive] [--dump-schedule FILE] "
               "[--trace FILE] [--metrics FILE]\n"
               "       %s --sbst [--executor inproc|subprocess] [--workers N] "
               "[--shard-timeout S] [--max-respawns N] [--min-workers N] "
               "[--chaos SPEC] [--programs N] [--limit N] [--threads N] "
               "[--lanes 64|128|256] [--clocking full|incremental] "
               "[--schedule default|cone|adaptive] [--model sa|tdf] "
               "[--cache-dir DIR] [--seed-from FILE] [--diff-nets A,B,..] "
               "[--json FILE] [--json-no-stats FILE] [--trace FILE] "
               "[--metrics FILE] [--progress]\n"
               "       %s --worker [--chaos SPEC]\n",
               argv0, argv0, argv0);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

// ---------------------------------------------------------------------------
// --worker: one subprocess campaign worker over the built-in SBST workload.

/// Rebuilds SBST grading state from each request's CampaignTest::spec.
/// The SoC, universe, and topology are built lazily on the first request
/// and shared across tests; per-test runners (simulator + reference
/// trace) are cached so a persistent worker pays the rebuild once.
class SbstWorkerWorkload final : public WorkerWorkload {
 public:
  std::size_t universe_size() override {
    ensure_soc();
    return universe_->size();
  }

  LaneMask run_batch(const ShardRequest& request,
                     std::span<const FaultId> faults) override {
    return entry(request).runner->run_batch(faults);
  }

  std::uint64_t state_fingerprint(const ShardRequest& request) override {
    return entry(request).trace_fp;
  }

 private:
  struct Entry {
    std::unique_ptr<FaultBatchRunner> runner;
    std::uint64_t trace_fp = 0;
  };

  void ensure_soc() {
    if (soc_) return;
    soc_ = build_soc({});  // must match the coordinator's configuration
    universe_ = std::make_unique<FaultUniverse>(soc_->netlist);
    topo_ = PackedTopology::build(soc_->netlist);
    suite_ = build_sbst_suite(soc_->config);
  }

  Entry& entry(const ShardRequest& request) {
    ensure_soc();
    const std::string key = request.test + "|" +
                            std::string(to_string(request.fault_model)) + "|" +
                            request.spec.dump();
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      SbstCampaignTest rebuilt = rebuild_sbst_campaign_test(
          *soc_, suite_, *universe_, topo_, request.spec, request.fault_model);
      Entry e;
      e.trace_fp = rebuilt.trace->fingerprint();
      e.runner = rebuilt.test.make_runner();
      it = cache_.emplace(key, std::move(e)).first;
    }
    return it->second;
  }

  std::unique_ptr<Soc> soc_;
  std::unique_ptr<FaultUniverse> universe_;
  std::shared_ptr<const PackedTopology> topo_;
  std::vector<SbstProgram> suite_;
  std::map<std::string, Entry> cache_;
};

int run_worker_mode(int argc, char** argv) {
  // --chaos SPEC injects deterministic failures (see ChaosSpec); the
  // OLFUI_CHAOS environment variable reaches workers the coordinator
  // spawns without any argv plumbing, so the flag is mostly for driving
  // one worker by hand.
  ChaosSpec chaos;
  bool chaos_given = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chaos" && i + 1 < argc) {
      try {
        chaos = chaos_spec_from_string(argv[++i]);
        chaos_given = true;
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else {
      usage(argv[0]);
    }
  }
  SbstWorkerWorkload workload;
  return serve_worker(stdin, stdout, workload, chaos_given ? &chaos : nullptr);
}

// ---------------------------------------------------------------------------
// Observability surface shared by the campaign-running modes.

/// Enables the process-wide tracer/metrics before a campaign runs (both
/// are strictly side-band — the grading payload is byte-identical either
/// way, asserted in tests and CI).
void enable_observability(const std::string& trace_path,
                          const std::string& metrics_path) {
  if (!trace_path.empty()) {
    obs::tracer().set_enabled(true);
    obs::tracer().set_process_label(0, "coordinator");
  }
  if (!metrics_path.empty()) obs::metrics().set_enabled(true);
}

void write_observability(const std::string& trace_path,
                         const std::string& metrics_path) {
  if (!trace_path.empty())
    write_file(trace_path, obs::tracer().to_json().dump() + "\n");
  if (!metrics_path.empty())
    write_file(metrics_path, obs::metrics().to_json().dump(2) + "\n");
}

/// Builds the opt-in stderr heartbeat: one throttled line per completed
/// shard batch with shards done / a (lanes - 1)-per-shard estimate of the
/// total, faults graded, rate, and ETA. Progress callbacks arrive
/// serialized (the engine holds a mutex), so the state needs no further
/// locking.
CampaignProgress make_progress_heartbeat(int lanes) {
  struct Heartbeat {
    std::string test;
    std::chrono::steady_clock::time_point t0, last;
    std::size_t shards = 0;
  };
  const std::size_t batch = static_cast<std::size_t>(lanes - 1);
  auto hb = std::make_shared<Heartbeat>();
  return [hb, batch](const std::string& test, std::size_t graded,
                     std::size_t targeted) {
    const auto now = std::chrono::steady_clock::now();
    if (test != hb->test) {
      hb->test = test;
      hb->t0 = now;
      hb->last = {};
      hb->shards = 0;
    }
    ++hb->shards;
    // Throttle to ~2 lines/s but always print a test's final shard.
    if (graded < targeted &&
        now - hb->last < std::chrono::milliseconds(500))
      return;
    hb->last = now;
    const double elapsed = std::chrono::duration<double>(now - hb->t0).count();
    const double rate =
        elapsed > 0 ? static_cast<double>(graded) / elapsed : 0.0;
    const double eta =
        rate > 0 ? static_cast<double>(targeted - graded) / rate : 0.0;
    const std::size_t est_shards = (targeted + batch - 1) / batch;
    std::fprintf(stderr,
                 "[progress] %s: shard %zu/~%zu, %zu/%zu faults, "
                 "%.0f faults/s, eta %.1fs\n",
                 test.c_str(), hb->shards, est_shards, graded, targeted, rate,
                 eta);
  };
}

// ---------------------------------------------------------------------------
// --sbst: campaign coordinator over the built-in SBST workload.

int run_sbst_mode(int argc, char** argv) {
  std::size_t programs = 0, limit = 0;
  int threads = 0, workers = 2, lanes = 64;
  FleetOptions fleet;
  double shard_timeout = 0;
  bool subprocess = false, transition = false, progress = false;
  bool incremental_clocking = true;
  std::string schedule = "default", json_path, json_no_stats_path;
  std::string trace_path, metrics_path, chaos_spec;
  std::string cache_dir, seed_from_path, diff_nets_spec;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    const auto next_uint = [&]() -> std::size_t {
      const auto n = parse_uint(next());
      if (!n) usage(argv[0]);
      return static_cast<std::size_t>(*n);
    };
    if (arg == "--executor") {
      const std::string kind = next();
      if (kind == "subprocess") subprocess = true;
      else if (kind != "inproc") usage(argv[0]);
    } else if (arg == "--workers") {
      workers = static_cast<int>(next_uint());
    } else if (arg == "--shard-timeout") {
      char* end = nullptr;
      const std::string text = next();
      shard_timeout = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || shard_timeout < 0)
        usage(argv[0]);
    } else if (arg == "--max-respawns") {
      fleet.max_respawns = static_cast<int>(next_uint());
    } else if (arg == "--min-workers") {
      fleet.min_workers = static_cast<int>(next_uint());
    } else if (arg == "--chaos") {
      chaos_spec = next();
      try {
        chaos_spec_from_string(chaos_spec);  // validate before spawning
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--programs") {
      programs = next_uint();
    } else if (arg == "--limit") {
      limit = next_uint();
    } else if (arg == "--threads") {
      threads = static_cast<int>(next_uint());
    } else if (arg == "--lanes") {
      lanes = static_cast<int>(next_uint());
      if (lanes != 64 && lanes != 128 && lanes != 256) usage(argv[0]);
    } else if (arg == "--clocking") {
      const std::string mode = next();
      if (mode != "full" && mode != "incremental") usage(argv[0]);
      incremental_clocking = mode == "incremental";
    } else if (arg == "--schedule") {
      schedule = next();
      if (schedule != "default" && schedule != "cone" && schedule != "adaptive")
        usage(argv[0]);
    } else if (arg == "--model") {
      const std::string model = next();
      if (model != "sa" && model != "tdf") usage(argv[0]);
      transition = model == "tdf";
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--seed-from") {
      seed_from_path = next();
    } else if (arg == "--diff-nets") {
      diff_nets_spec = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--json-no-stats") {
      json_no_stats_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--progress") {
      progress = true;
    } else {
      usage(argv[0]);
    }
  }
  enable_observability(trace_path, metrics_path);

  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  if (programs && programs < suite.size())
    suite.erase(suite.begin() + static_cast<std::ptrdiff_t>(programs),
                suite.end());
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);

  CampaignOptions opts;
  opts.threads = threads;
  opts.fault_model =
      transition ? FaultModel::kTransition : FaultModel::kStuckAt;
  opts.target_limit = limit;
  opts.shard_timeout = shard_timeout;
  opts.lane_width = lanes;
  opts.incremental_clocking = incremental_clocking;
  if (resolve_lane_width(lanes) != lanes)
    std::fprintf(stderr,
                 "note: this build has no %d-lane kernel; grading with the "
                 "scalar 64-lane path\n",
                 lanes);
  if (schedule == "cone")
    opts.scheduler = std::make_shared<const ConeScheduler>(universe);
  else if (schedule == "adaptive")
    opts.scheduler = std::make_shared<const AdaptiveScheduler>();
  if (subprocess) {
    fleet.workers = workers;
    std::vector<std::string> worker_cmd{argv[0], "--worker"};
    if (!chaos_spec.empty()) {
      worker_cmd.push_back("--chaos");
      worker_cmd.push_back(chaos_spec);
    }
    opts.executor =
        std::make_shared<SubprocessExecutor>(std::move(worker_cmd), fleet);
  }
  if (!cache_dir.empty())
    opts.cache = std::make_shared<ResultCache>(64, cache_dir);

  std::printf("sbst campaign: %zu programs, %zu faults%s, model %s,\n"
              "  %d lanes, %s clocking, schedule %s, executor %s",
              suite.size(), universe.size(), limit ? " (sliced)" : "",
              transition ? "tdf" : "sa", resolve_lane_width(lanes),
              incremental_clocking ? "incremental" : "full", schedule.c_str(),
              subprocess ? "subprocess" : "inproc");
  if (subprocess) std::printf(" (%d workers)", workers);
  std::printf("\n");

  const CampaignProgress heartbeat =
      progress ? make_progress_heartbeat(resolve_lane_width(lanes))
               : CampaignProgress{};
  SbstCampaignResult result;
  if (!seed_from_path.empty()) {
    // Incremental re-grade: splice the previous run's detections for
    // every fault the diff cannot reach, re-grade only the rest.
    CampaignResult previous;
    try {
      previous = campaign_result_from_json_string(read_file(seed_from_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot parse '%s': %s\n",
                   seed_from_path.c_str(), e.what());
      return 1;
    }
    std::vector<NetId> changed;
    for (std::string_view name : split(diff_nets_spec, ",")) {
      const NetId n = soc->netlist.find_net(std::string(trim(name)));
      if (n == kInvalidId) {
        std::fprintf(stderr, "error: --diff-nets: no net '%.*s'\n",
                     static_cast<int>(name.size()), name.data());
        return 1;
      }
      changed.push_back(n);
    }
    const std::vector<CampaignTest> tests = build_sbst_campaign_tests(
        *soc, suite, universe, kSbstCampaignMargin, /*event_driven=*/true,
        opts.fault_model, resolve_lane_width(opts.lane_width),
        opts.incremental_clocking);
    try {
      // The SoC environment is closed-loop (the memory model reads the
      // bus), so env_feedback stays on: a diff reaching the bus outputs
      // soundly falls back to a full re-grade.
      CampaignResult seeded =
          seed_from_previous(universe, opts, fl, tests, previous, changed,
                             nullptr, /*env_feedback=*/true, heartbeat);
      for (const CampaignResult::PerTest& pt : seeded.tests) {
        result.programs.push_back({pt.name, pt.good_cycles,
                                   pt.new_detections});
        result.total_detected += pt.new_detections;
      }
      result.campaign = std::move(seeded);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: --seed-from: %s\n", e.what());
      return 1;
    }
  } else {
    result = run_sbst_campaign(*soc, suite, fl, heartbeat, opts);
  }
  for (const auto& pp : result.programs)
    std::printf("  %-12s %6d cycles %8zu new detections\n", pp.name.c_str(),
                pp.cycles, pp.new_detections);
  const auto& stats = result.campaign.stats;
  std::printf("campaign: %zu new detections, %zu fault-test pairs graded, "
              "%zu batches, %.2f s, %.0f faults/sec\n",
              result.campaign.total_new_detections, stats.faults_simulated,
              stats.batches, stats.wall_seconds, stats.faults_per_second);
  if (stats.respawns || stats.shard_reissues || stats.timeouts ||
      stats.degraded_shards)
    std::printf("recovery: %zu respawn(s), %zu shard reissue(s), "
                "%zu timeout(s), %zu shard(s) graded by the in-process "
                "fallback\n",
                stats.respawns, stats.shard_reissues, stats.timeouts,
                stats.degraded_shards);
  if (opts.cache) {
    const ResultCacheStats cs = opts.cache->stats();
    std::printf("cache: %s (hits %zu, misses %zu, stores %zu)\n",
                stats.cache.c_str(), cs.hits, cs.misses, cs.stores);
  }
  if (stats.cache == "partial")
    std::printf("incremental: %zu detection(s) spliced, %zu fault(s) "
                "re-graded (%.1f%% of eligible)\n",
                stats.cache_spliced, stats.regraded_faults,
                100.0 * stats.regrade_fraction);

  if (!json_path.empty())
    write_file(json_path,
               campaign_result_to_json_string(result.campaign) + "\n");
  if (!json_no_stats_path.empty())
    write_file(json_no_stats_path,
               campaign_result_to_json_string(result.campaign, 2,
                                              /*include_stats=*/false) +
                   "\n");
  write_observability(trace_path, metrics_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  if (std::strcmp(argv[1], "--worker") == 0)
    return run_worker_mode(argc, argv);
  if (std::strcmp(argv[1], "--sbst") == 0) return run_sbst_mode(argc, argv);
  std::string input = argv[1];
  std::vector<std::pair<std::string, bool>> ties;
  std::vector<std::string> unobserved;
  MemoryMap map;
  bool use_memmap = false, sweep = false, transition = false, campaign = false;
  int threads = 0;
  std::string csv_path, json_path, schedule = "default", dump_schedule_path;
  std::string trace_path, metrics_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--tie") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq + 1 >= spec.size()) usage(argv[0]);
      ties.emplace_back(spec.substr(0, eq), spec[eq + 1] == '1');
    } else if (arg == "--unobserve") {
      unobserved.push_back(next());
    } else if (arg == "--memmap") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      const auto base = parse_uint(spec.substr(0, colon));
      const auto size = parse_uint(spec.substr(colon + 1));
      if (colon == std::string::npos || !base || !size) usage(argv[0]);
      map.add_range("range" + std::to_string(map.ranges().size()), *base, *size);
      use_memmap = true;
    } else if (arg == "--model") {
      const std::string model = next();
      if (model != "sa" && model != "tdf") usage(argv[0]);
      transition = model == "tdf";
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--campaign") {
      campaign = true;
    } else if (arg == "--threads") {
      const auto n = parse_uint(next());
      if (!n) usage(argv[0]);
      threads = static_cast<int>(*n);
    } else if (arg == "--schedule") {
      schedule = next();
      if (schedule != "default" && schedule != "cone" && schedule != "adaptive")
        usage(argv[0]);
    } else if (arg == "--dump-schedule") {
      dump_schedule_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else {
      usage(argv[0]);
    }
  }
  enable_observability(trace_path, metrics_path);

  Netlist nl = [&] {
    try {
      return parse_verilog(read_file(input));
    } catch (const VerilogError& e) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(), e.what());
      std::exit(1);
    }
  }();
  if (sweep) {
    SweepStats st;
    nl = constant_sweep(nl, &st);
    std::printf("sweep: %zu -> %zu cells\n", st.cells_in, st.cells_out);
  }
  std::printf("%s: %zu cells, %zu nets, %zu flops\n", nl.name().c_str(),
              nl.stats().cells, nl.stats().nets, nl.stats().flops);

  MissionConfig mission;
  for (const auto& [name, value] : ties) {
    const NetId n = nl.find_net(name);
    if (n == kInvalidId) {
      std::fprintf(stderr, "error: no net '%s'\n", name.c_str());
      return 1;
    }
    mission.tie(n, value);
  }
  for (const std::string& name : unobserved) {
    const CellId c = nl.find_output(name);
    if (c == kInvalidId) {
      std::fprintf(stderr, "error: no output port '%s'\n", name.c_str());
      return 1;
    }
    mission.unobserve(c);
  }
  if (use_memmap) mission.merge(memmap_config(nl, map, 32));

  const FaultUniverse universe(nl);
  const StructuralAnalyzer sta(nl, universe);
  FaultList faults(universe);
  const StaResult result = sta.analyze(mission);
  const std::size_t pruned =
      transition
          ? sta.classify_transition_faults(result, faults, OnlineSource::kScan)
          : sta.classify_faults(result, faults, OnlineSource::kScan);

  std::printf("fault model: %s\n", transition ? "transition-delay" : "stuck-at");
  std::printf("on-line functionally untestable: %zu / %zu (%.1f%%)\n", pruned,
              universe.size(),
              universe.size()
                  ? 100.0 * static_cast<double>(pruned) /
                        static_cast<double>(universe.size())
                  : 0.0);
  std::printf("\n%s", module_breakdown_table(faults).c_str());

  // Batch-formation policy shared by --dump-schedule and --campaign.
  // Null means the engine's built-in fixed policy; "adaptive" with no
  // previous run to profile also plans fixed (documented cold start).
  // Built only when a consumer exists — cone analysis walks the whole
  // netlist and a plain analysis run should not pay for it.
  std::shared_ptr<const BatchScheduler> scheduler;
  std::shared_ptr<const ConeScheduler> cone_scheduler;
  if (campaign || !dump_schedule_path.empty()) {
    if (schedule == "cone") {
      cone_scheduler = std::make_shared<const ConeScheduler>(universe);
      scheduler = cone_scheduler;
    } else if (schedule == "adaptive") {
      scheduler = std::make_shared<const AdaptiveScheduler>();
    }
  }

  if (!dump_schedule_path.empty()) {
    // Plan the testable universe exactly as a campaign's first test would
    // see it (untestable faults never enter the queue).
    std::vector<FaultId> targets;
    for (FaultId f = 0; f < universe.size(); ++f)
      if (faults.untestable_kind(f) == UntestableKind::kNone)
        targets.push_back(f);
    const FixedScheduler fixed;
    const BatchScheduler& policy = scheduler ? *scheduler : fixed;
    const BatchPlan plan =
        policy.plan(targets, {.batch_size = 63, .test_name = "dump"});
    // The dump reads signatures out of the scheduler's own ConeAnalysis
    // (built once at construction) — recomputing them here could silently
    // disagree with the plan it annotates.
    std::vector<ConeSig> sigs;
    if (cone_scheduler) sigs = cone_scheduler->signatures(targets);
    Json doc = batch_plan_to_json(plan, policy.name(), sigs);
    // Per-width Bloom saturation of this plan (64/128/256): how many
    // batches drive their filter to all-ones at each width — the measure
    // behind the --schedule cone width tradeoff.
    doc.set("saturation",
            cone_saturation_to_json(plan, targets, universe,
                                    *PackedTopology::build(nl)));
    write_file(dump_schedule_path, doc.dump(2) + "\n");
  }

  Json manuf_json;  // filled by --campaign, merged into --json output
  if (campaign) {
    if (transition) {
      std::fprintf(stderr,
                   "error: --campaign applies stuck-at scan patterns; it "
                   "cannot grade the transition-delay model (--model tdf)\n");
      return 1;
    }
    ScanChains chains;
    try {
      chains = trace_scan(nl);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "error: --campaign needs traceable scan chains: %s\n",
                   e.what());
      return 1;
    }
    ScanAtpgOptions atpg_opts;
    atpg_opts.campaign.threads = threads;
    atpg_opts.campaign.scheduler = scheduler;
    // Mission-constant nets keep their values during test application.
    for (const auto& [name, value] : ties)
      atpg_opts.pin_constraints.emplace_back(nl.find_net(name), value);
    const int resolved =
        CampaignEngine(universe, atpg_opts.campaign).resolved_threads();
    std::printf("\nmanufacturing campaign: %zu chains, %zu scan flops, "
                "%d threads\n",
                chains.chains.size(), chains.num_flops(), resolved);
    // Manufacturing runs with full tester access: grade a fresh fault
    // list so the mission-mode untestability marks above don't shrink
    // the target queue (they are exactly the faults whose scan coverage
    // the gap argument needs).
    FaultList manuf(universe);
    const ScanAtpgResult atpg =
        generate_scan_tests(nl, chains, universe, manuf, atpg_opts);
    std::printf("  chain test:    %zu detected\n", atpg.detected_by_chain_test);
    std::printf("  random:        %zu detected (%zu kept patterns)\n",
                atpg.detected_by_random, atpg.patterns.size());
    std::printf("  deterministic: %zu detected, %zu proven redundant, "
                "%zu aborted\n",
                atpg.detected_by_deterministic, atpg.proven_untestable,
                atpg.aborted);
    std::printf("  manufacturing coverage:  %6.2f%%\n",
                100.0 * manuf.raw_coverage());
    // The paper's gap: faults the tester detects but the mission-mode
    // analysis above proved on-line untestable.
    std::size_t gap = 0;
    for (FaultId f = 0; f < universe.size(); ++f)
      if (manuf.detect_state(f) == DetectState::kDetected &&
          faults.untestable_kind(f) != UntestableKind::kNone)
        ++gap;
    std::printf("  detected on the tester but on-line untestable: %zu "
                "(%.2f%% of the universe)\n",
                gap, 100.0 * static_cast<double>(gap) /
                         static_cast<double>(universe.size()));

    manuf_json = Json::object();
    manuf_json.set("threads", resolved);
    manuf_json.set("detected_by_chain_test", atpg.detected_by_chain_test);
    manuf_json.set("detected_by_random", atpg.detected_by_random);
    manuf_json.set("detected_by_deterministic",
                   atpg.detected_by_deterministic);
    manuf_json.set("proven_untestable", atpg.proven_untestable);
    manuf_json.set("aborted", atpg.aborted);
    manuf_json.set("kept_patterns", atpg.patterns.size());
    manuf_json.set("coverage", manuf.raw_coverage());
    manuf_json.set("detected_but_online_untestable", gap);
  }

  write_observability(trace_path, metrics_path);
  if (!csv_path.empty()) write_file(csv_path, to_csv(faults, true));
  if (!json_path.empty()) {
    std::string summary = to_json_summary(faults);
    if (manuf_json.is_object()) {
      Json doc = Json::parse(summary);
      doc.set("manufacturing_campaign", std::move(manuf_json));
      summary = doc.dump(2);
    }
    write_file(json_path, summary);
  }
  return 0;
}
