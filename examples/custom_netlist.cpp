// custom_netlist — applying the flow to a third-party gate-level netlist.
//
// The identification technique is not CPU-specific: anything with tied
// mission inputs and unread outputs benefits. This example parses a small
// structural-Verilog netlist (a peripheral with a debug tap), declares its
// mission configuration by hand, and classifies every fault.
//
//   $ ./custom_netlist
#include <cstdio>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "sta/sta.hpp"
#include "verilog/verilog.hpp"

namespace {

// A tiny peripheral: an enable-gated event counter with a debug tap that
// mission firmware never reads, and a test input tied low on the board.
constexpr const char* kNetlist = R"(
module event_counter (
  input clk_en,
  input event_in,
  input test_mode,
  input rstn,
  output event_seen,
  output dbg_tap
);
  wire armed;
  wire ev;
  wire sample_d;
  wire q;
  wire tapbuf;
  AND2 u_arm (.Y(armed), .A(clk_en), .B(rstn));
  MUX2 u_src (.Y(ev), .A(event_in), .B(armed), .S(test_mode));
  OR2  u_hold (.Y(sample_d), .A(ev), .B(q));
  DFFR u_ff (.Q(q), .D(sample_d), .RSTN(rstn));
  BUF  u_tap (.Y(tapbuf), .A(q));
  assign event_seen = q;
  assign dbg_tap = tapbuf;
endmodule
)";

}  // namespace

int main() {
  using namespace olfui;

  const Netlist nl = parse_verilog(kNetlist);
  std::printf("parsed '%s': %zu cells, %zu nets\n", nl.name().c_str(),
              nl.stats().cells, nl.stats().nets);

  const FaultUniverse universe(nl);
  const StructuralAnalyzer sta(nl, universe);
  std::printf("fault universe: %zu stuck-at faults\n\n", universe.size());

  // Mission configuration: the board ties test_mode to ground and nothing
  // reads the debug tap in the field.
  MissionConfig mission;
  mission.tie(nl.find_input("test_mode"), false);
  mission.unobserve(nl.find_output("dbg_tap"));

  FaultList faults(universe);
  const StaResult result = sta.analyze(mission);
  const std::size_t pruned =
      sta.classify_faults(result, faults, OnlineSource::kDebugControl);

  std::printf("on-line functionally untestable: %zu / %zu\n\n", pruned,
              universe.size());
  std::printf("%-34s %-14s %s\n", "fault", "class", "why");
  for (FaultId f = 0; f < universe.size(); ++f) {
    const UntestableKind k = faults.untestable_kind(f);
    if (k == UntestableKind::kNone) continue;
    std::printf("%-34s %-14s %s\n", universe.fault_name(f).c_str(),
                std::string(to_string(k)).c_str(),
                k == UntestableKind::kTied
                    ? "site constant in mission mode"
                    : "no sensitizable path to a read output");
  }
  std::printf("\neverything else remains in the self-test target list.\n");
  return 0;
}
