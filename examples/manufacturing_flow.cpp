// manufacturing_flow — the tester's side of the story.
//
// Generates a manufacturing scan-test set for the SoC (chain test, random
// patterns, deterministic PODEM top-up), writes it to a pattern file, and
// contrasts the manufacturing coverage with the faults the on-line flow
// prunes: every class the field cannot test is reachable from the tester.
//
//   $ ./manufacturing_flow [patterns.out]
#include <cstdio>
#include <fstream>

#include "core/analyzer.hpp"
#include "scan/pattern_io.hpp"
#include "scan/scan_atpg.hpp"

int main(int argc, char** argv) {
  using namespace olfui;

  SocConfig cfg;
  cfg.cpu.with_multiplier = false;  // keep the demo in seconds
  cfg.cpu.btb_entries = 2;
  cfg.scan.num_chains = 8;
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  std::printf("SoC: %zu cells, %zu faults\n", soc->netlist.stats().cells,
              universe.size());

  // Manufacturing test generation.
  FaultList faults(universe);
  ScanAtpgOptions opts;
  opts.random_patterns = 32;
  opts.max_deterministic_targets = 500;
  opts.pin_constraints = {{soc->cpu.rstn, true}};
  const ScanChains chains = trace_scan(soc->netlist);
  std::printf("generating scan tests (chain + %d random + <=%zu PODEM)...\n",
              opts.random_patterns, opts.max_deterministic_targets);
  const ScanAtpgResult result =
      generate_scan_tests(soc->netlist, chains, universe, faults, opts);

  std::printf("  chain test:    %zu detections\n", result.detected_by_chain_test);
  std::printf("  random:        %zu detections\n", result.detected_by_random);
  std::printf("  deterministic: %zu detections (%zu redundant, %zu aborted)\n",
              result.detected_by_deterministic, result.proven_untestable,
              result.aborted);
  std::printf("  manufacturing coverage: %.2f%% with %zu patterns\n\n",
              100.0 * faults.raw_coverage(), result.patterns.size());

  // Cross-check with the on-line analysis: how many of the pruned faults
  // did the tester reach?
  FaultList online(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  analyzer.run(online);
  std::size_t pruned = 0, reached = 0;
  for (FaultId f = 0; f < universe.size(); ++f) {
    if (online.online_source(f) == OnlineSource::kScan ||
        online.online_source(f) == OnlineSource::kDebugControl ||
        online.online_source(f) == OnlineSource::kDebugObserve) {
      ++pruned;
      if (faults.detect_state(f) == DetectState::kDetected) ++reached;
    }
  }
  std::printf("of %zu scan/debug faults the on-line flow prunes, the tester "
              "detected %zu (%.1f%%)\n",
              pruned, reached, pruned ? 100.0 * reached / pruned : 0.0);
  std::printf("— testable at manufacturing, untestable in the field: the "
              "paper's Fig. 1.\n\n");

  // Export the pattern set.
  const std::string path = argc > 1 ? argv[1] : "patterns.out";
  std::ofstream out(path);
  out << write_patterns(soc->netlist, result.patterns);
  std::printf("wrote %zu patterns to %s\n", result.patterns.size(), path.c_str());
  return 0;
}
