// quickstart — the whole DATE'13 flow in one page.
//
// Builds the case-study SoC (MiniRISC32 + scan + Nexus-style debug +
// mission memory map), enumerates the stuck-at universe, runs the on-line
// untestability identification flow, and prints the Table-I style report.
//
//   $ ./quickstart
#include <cstdio>

#include "core/analyzer.hpp"

int main() {
  using namespace olfui;

  // 1. The design under analysis. SocConfig defaults reproduce the paper's
  //    case study: Flash at 0x0007_8000, RAM at 0x4000_0000, full scan,
  //    debug unit attached.
  auto soc = build_soc({});
  const NetlistStats stats = soc->netlist.stats();
  std::printf("SoC: %zu cells (%zu gates, %zu flops), %zu nets\n", stats.cells,
              stats.gates, stats.flops, stats.nets);

  // 2. The stuck-at fault universe: two faults per cell pin, like the
  //    214,930-fault list of the paper's industrial core.
  const FaultUniverse universe(soc->netlist);
  std::printf("fault universe: %zu stuck-at faults (%zu after collapsing)\n\n",
              universe.size(), universe.collapsed_count());

  // 3. Identify the on-line functionally untestable faults: scan chains,
  //    debug control, debug observation, memory map (paper §3).
  FaultList faults(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  const AnalysisReport report = analyzer.run(faults);

  // 4. The Table-I report.
  std::printf("%s", report.table1().c_str());

  // 5. What pruning buys: the coverage denominator shrinks by the pruned
  //    fraction, so any SBST suite's coverage figure rises accordingly.
  const double share = report.online_pct() / 100.0;
  std::printf("\na suite detecting e.g. 70%% of all faults reports %.1f%% after "
              "pruning\n",
              100.0 * 0.70 / (1.0 - share));
  return 0;
}
