// sbst_flow — developing and grading a software-based self-test suite.
//
// Shows the SBST side of the toolkit: assemble test programs with the
// Program builder, execute them on the gate-level SoC, inspect signatures
// and toggle activity, find which input ports the suite never exercises
// (the paper's §4 screening step), and grade part of the suite against
// the stuck-at universe through the parallel campaign orchestrator,
// exporting the result as JSON.
//
//   $ ./sbst_flow
#include <cstdio>

#include "campaign/report.hpp"
#include "debug/debug.hpp"
#include "sbst/sbst.hpp"

int main() {
  using namespace olfui;

  SocConfig cfg;
  cfg.cpu.with_multiplier = false;  // keep the demo snappy
  auto soc = build_soc(cfg);

  // --- a hand-written self-test program ---------------------------------
  Program checksum(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base);
  checksum.li(0, 0);
  checksum.li(7, ram);
  checksum.li(1, 0x1234'5678);  // seed
  checksum.li(2, 16);           // rounds
  checksum.li(3, 0);            // checksum
  checksum.label("round");
  checksum.add(3, 3, 1);
  checksum.xor_(1, 1, 3);
  checksum.sll(4, 1, 2);  // shift by loop counter (bits 4..0)
  checksum.or_(3, 3, 4);
  checksum.addi(2, 2, -1);
  checksum.bne(2, 0, "round");
  checksum.sw(3, 7, 0);
  checksum.halt();

  SocSimulator sim(*soc);
  sim.load_program(checksum);
  const int cycles = sim.run(2000);
  std::printf("hand-written checksum program: %d cycles, halted=%d\n", cycles,
              sim.halted());
  std::printf("  signature @RAM[0] = 0x%08x\n\n", sim.ram_word(ram));

  // --- the shipped suite -------------------------------------------------
  auto suite = build_sbst_suite(cfg);
  ToggleRecorder recorder(soc->netlist);
  const auto suite_cycles = run_suite_functional(*soc, suite, 5000, &recorder);
  std::printf("%-12s %8s\n", "program", "cycles");
  for (std::size_t i = 0; i < suite.size(); ++i)
    std::printf("%-12s %8d\n", suite[i].name.c_str(), suite_cycles[i]);

  // --- activity screening --------------------------------------------------
  const auto quiet = find_quiet_inputs(soc->netlist, recorder);
  std::printf("\ninput ports never exercised by the suite (%zu):\n", quiet.size());
  for (NetId n : quiet)
    std::printf("  %s\n", soc->netlist.net(n).name.c_str());
  std::printf("\nthese are the candidates the DATE'13 flow ties off before the\n"
              "structural untestability analysis (see bench_signal_activity).\n");

  // --- fault-simulation campaign through the orchestrator -----------------
  // Two programs keep the demo snappy; the full-suite equivalent is
  // bench_campaign_scaling / bench_coverage_gain.
  auto graded = suite;
  graded.erase(graded.begin() + 2, graded.end());
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);
  std::printf("\ngrading %zu programs against %zu faults "
              "(system-bus observability)...\n",
              graded.size(), universe.size());
  const SbstCampaignResult campaign = run_sbst_campaign(*soc, graded, fl);
  for (const auto& pp : campaign.programs)
    std::printf("  %-12s %6d cycles %8zu new detections\n", pp.name.c_str(),
                pp.cycles, pp.new_detections);
  const auto& stats = campaign.campaign.stats;
  std::printf("campaign: %d threads, %zu batches, %.1f s, %.0f faults/sec\n",
              stats.threads, stats.batches, stats.wall_seconds,
              stats.faults_per_second);
  std::printf("coverage: %.2f%% raw\n", 100.0 * campaign.campaign.raw_coverage);

  const std::string json = campaign_result_to_json_string(campaign.campaign);
  std::printf("\ncampaign result as JSON (%zu bytes), first lines:\n",
              json.size());
  for (std::size_t pos = 0, line = 0; line < 8 && pos < json.size(); ++line) {
    const auto nl_pos = json.find('\n', pos);
    const std::size_t len =
        (nl_pos == std::string::npos ? json.size() : nl_pos) - pos;
    std::printf("  %.*s\n", static_cast<int>(len), json.c_str() + pos);
    if (nl_pos == std::string::npos) break;
    pos = nl_pos + 1;
  }
  return 0;
}
